package bnbnet

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// allNetworks builds one instance of every Network implementation at order m
// (the crossbar gets 2^m ports).
func allNetworks(t testing.TB, m, w int) []Network {
	t.Helper()
	var nets []Network
	for _, build := range []func() (Network, error){
		func() (Network, error) { return NewBNB(m, w) },
		func() (Network, error) { return New("batcher", m, WithDataBits(w)) },
		func() (Network, error) { return New("koppelman", m, WithDataBits(w)) },
		func() (Network, error) { return New("benes", m) },
		func() (Network, error) { return New("waksman", m) },
		func() (Network, error) { return New("bitonic", m) },
		func() (Network, error) { return NewCrossbar(1 << uint(m)) },
	} {
		n, err := build()
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, n)
	}
	return nets
}

// TestAllNetworksRouteRandomPermutations is the cross-network contract test:
// every implementation delivers every workload.
func TestAllNetworksRouteRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{2, 4, 6, 8} {
		for _, n := range allNetworks(t, m, 8) {
			for trial := 0; trial < 10; trial++ {
				p := RandomPerm(n.Inputs(), rng)
				out, err := n.RoutePerm(p)
				if err != nil {
					t.Fatalf("%s m=%d: %v", n.Name(), m, err)
				}
				for j, wd := range out {
					if wd.Addr != j {
						t.Fatalf("%s m=%d: output %d carries address %d", n.Name(), m, j, wd.Addr)
					}
				}
				for i, d := range p {
					if out[d].Data != uint64(i) {
						t.Fatalf("%s m=%d: payload lost at output %d", n.Name(), m, d)
					}
				}
			}
		}
	}
}

// TestAllNetworksRouteStructuredFamilies sweeps the structured families.
func TestAllNetworksRouteStructuredFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := 6
	for _, n := range allNetworks(t, m, 0) {
		for _, f := range PermFamilies() {
			p, err := GeneratePerm(f, m, rng)
			if err != nil {
				t.Fatal(err)
			}
			out, err := n.RoutePerm(p)
			if err != nil {
				t.Fatalf("%s family %v: %v", n.Name(), f, err)
			}
			for j, wd := range out {
				if wd.Addr != j {
					t.Fatalf("%s family %v: misrouted", n.Name(), f)
				}
			}
		}
	}
}

// TestAllNetworksRejectNonPermutations checks the shared input contract.
func TestAllNetworksRejectNonPermutations(t *testing.T) {
	for _, n := range allNetworks(t, 3, 0) {
		words := make([]Word, n.Inputs())
		for i := range words {
			words[i] = Word{Addr: 0} // duplicate destinations
		}
		if _, err := n.Route(words); err == nil {
			t.Errorf("%s accepted duplicate destinations", n.Name())
		}
		if _, err := n.Route(words[:3]); err == nil {
			t.Errorf("%s accepted short input", n.Name())
		}
	}
}

func TestNames(t *testing.T) {
	want := []string{"bnb", "batcher", "koppelman", "benes", "waksman", "bitonic", "crossbar"}
	nets := allNetworks(t, 3, 0)
	for i, n := range nets {
		if n.Name() != want[i] {
			t.Errorf("network %d name %q, want %q", i, n.Name(), want[i])
		}
		if n.Inputs() != 8 {
			t.Errorf("%s inputs = %d, want 8", n.Name(), n.Inputs())
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewBNB(0, 0); err == nil {
		t.Error("NewBNB(0,0) accepted")
	}
	if _, err := NewBatcher(0, 0); err == nil {
		t.Error("NewBatcher(0,0) accepted")
	}
	if _, err := NewKoppelman(0, 0); err == nil {
		t.Error("NewKoppelman(0,0) accepted")
	}
	if _, err := NewBenes(0); err == nil {
		t.Error("NewBenes(0) accepted")
	}
	if _, err := NewCrossbar(0); err == nil {
		t.Error("NewCrossbar(0) accepted")
	}
}

// TestCostOrdering verifies the Table 1 story end to end through the public
// API, including where the orderings actually begin. With w = 8 data bits
// the switch-only BNB/Batcher crossover sits at m = 9 (Batcher's comparator
// deficit at small N outweighs its wider slices), the total-cost crossover
// at m = 3, and BNB passes the crossbar's raw component count near m = 9;
// asymptotically BNB wins every comparison, per the paper's leading terms.
func TestCostOrdering(t *testing.T) {
	for _, m := range []int{4, 6, 8, 9, 10, 12} {
		nets := allNetworks(t, m, 8)
		bnb, bat, kop, xbar := nets[0], nets[1], nets[2], nets[6]
		if swWins := bnb.Cost().Switches < bat.Cost().Switches; swWins != (m >= 9) {
			t.Errorf("m=%d w=8: BNB<Batcher switches = %v (%d vs %d); crossover should be m=9",
				m, swWins, bnb.Cost().Switches, bat.Cost().Switches)
		}
		bnbTotal := bnb.Cost().Total()
		if bnbTotal >= bat.Cost().Total() {
			t.Errorf("m=%d: BNB total %d not below Batcher %d", m, bnbTotal, bat.Cost().Total())
		}
		if bnb.Cost().Switches >= kop.Cost().Switches {
			t.Errorf("m=%d: BNB switches %d not below Koppelman %d",
				m, bnb.Cost().Switches, kop.Cost().Switches)
		}
		if bnbTotal >= kop.Cost().Total() {
			t.Errorf("m=%d: BNB total %d not below Koppelman %d", m, bnbTotal, kop.Cost().Total())
		}
		if m >= 10 && bnbTotal >= xbar.Cost().Total() {
			t.Errorf("m=%d: BNB total %d not below crossbar %d", m, bnbTotal, xbar.Cost().Total())
		}
	}
	// Switch-only ordering with w = 0 holds from small m (no wide slices to
	// amortize).
	for _, m := range []int{3, 6, 10} {
		nets := allNetworks(t, m, 0)
		if nets[0].Cost().Switches >= nets[1].Cost().Switches {
			t.Errorf("m=%d w=0: BNB switches %d not below Batcher %d",
				m, nets[0].Cost().Switches, nets[1].Cost().Switches)
		}
	}
}

// TestDelayOrdering verifies the Table 2 story through the public API for
// orders past the crossover.
func TestDelayOrdering(t *testing.T) {
	for _, m := range []int{8, 10, 12} {
		bnb, err := NewBNB(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := New("batcher", m)
		if err != nil {
			t.Fatal(err)
		}
		if bnb.Delay().Units(1, 1) >= bat.Delay().Units(1, 1) {
			t.Errorf("m=%d: BNB delay %v not below Batcher %v",
				m, bnb.Delay().Units(1, 1), bat.Delay().Units(1, 1))
		}
	}
}

func TestCostHelpers(t *testing.T) {
	c := Cost{Switches: 1, FunctionSlices: 2, AdderSlices: 3, Crosspoints: 4}
	if c.Total() != 10 {
		t.Errorf("Total = %d, want 10", c.Total())
	}
	d := Delay{SwitchUnits: 2, FunctionUnits: 3}
	if got := d.Units(0.5, 2); got != 7 {
		t.Errorf("Units = %v, want 7", got)
	}
}

func TestTablesThroughFacade(t *testing.T) {
	rows1, err := Table1(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows1) != 3 || rows1[2].Network != "BNB" {
		t.Errorf("Table1 rows = %+v", rows1)
	}
	rows2, err := Table2(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 3 || rows2[0].Network != "Batcher" {
		t.Errorf("Table2 rows = %+v", rows2)
	}
	hw, d, err := HeadlineRatios(20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hw <= 1.0/3.0 || hw >= 0.5 {
		t.Errorf("hardware ratio %v out of expected band", hw)
	}
	if d <= 2.0/3.0 || d >= 0.8 {
		t.Errorf("delay ratio %v out of expected band", d)
	}
	if _, err := Table1(0); err == nil {
		t.Error("Table1(0) accepted")
	}
	if _, err := Table2(0); err == nil {
		t.Error("Table2(0) accepted")
	}
}

func TestFabricThroughFacade(t *testing.T) {
	n, err := NewBNB(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewFabric(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.(*FabricSwitch); !ok {
		t.Fatalf("NewFabric default built %T, want *FabricSwitch", sw)
	}
	rng := rand.New(rand.NewSource(6))
	stats, err := sw.Run(PermutationTraffic{Load: 1.0}, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Throughput(16); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("throughput = %v, want 1.0", got)
	}
	if _, err := NewFabric(nil); err == nil {
		t.Error("NewFabric(nil) accepted")
	}
	if v, err := NewFabric(n, WithVOQ()); err != nil {
		t.Errorf("NewFabric(WithVOQ): %v", err)
	} else if _, ok := v.(*VOQFabricSwitch); !ok {
		t.Errorf("WithVOQ built %T, want *VOQFabricSwitch", v)
	}
	if _, err := NewFabric(n, WithVOQ(), WithDegraded()); err == nil {
		t.Error("WithVOQ + WithDegraded accepted")
	}
	if _, err := NewFabric(n, WithWorkers(2)); err == nil {
		t.Error("NewFabric accepted an engine option")
	}
	if _, err := New("bnb", 4, WithVOQ()); err == nil {
		t.Error("New accepted WithVOQ")
	}
}

func TestBenesSelfRoutingFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rate, shiftsOK, err := BenesSelfRouting(5, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !shiftsOK {
		t.Error("cyclic shifts failed to self-route")
	}
	if rate > 0.2 {
		t.Errorf("random self-route rate %v unexpectedly high", rate)
	}
	if _, _, err := BenesSelfRouting(0, 10, rng); err == nil {
		t.Error("BenesSelfRouting(0) accepted")
	}
}

func TestFiguresThroughFacade(t *testing.T) {
	g, err := FigGBN(3)
	if err != nil || !strings.Contains(g, "SB(3)") {
		t.Errorf("FigGBN: %v / %q", err, g)
	}
	b, err := FigBSN(3)
	if err != nil || !strings.Contains(b, "sp(3)") {
		t.Errorf("FigBSN: %v", err)
	}
	p, err := FigBNBProfile(3, 0)
	if err != nil || !strings.Contains(p, "NB(0,0)") {
		t.Errorf("FigBNBProfile: %v", err)
	}
	s, err := FigSplitter(3)
	if err != nil || !strings.Contains(s, "sp(3)") {
		t.Errorf("FigSplitter: %v", err)
	}
	if fn := FigFunctionNode(); !strings.Contains(fn, "XOR") {
		t.Error("FigFunctionNode missing gate description")
	}
	if _, err := FigGBN(0); err == nil {
		t.Error("FigGBN(0) accepted")
	}
	if _, err := FigBNBProfile(0, 0); err == nil {
		t.Error("FigBNBProfile(0,0) accepted")
	}
}

// TestKoppelmanDelayReportConsistent sanity-checks the analogue's data-path
// delay report grows like the Table 2 row.
func TestKoppelmanDelayReportConsistent(t *testing.T) {
	prev := 0.0
	for _, m := range []int{4, 6, 8, 10} {
		n, err := New("koppelman", m)
		if err != nil {
			t.Fatal(err)
		}
		u := n.Delay().Units(1, 1)
		if u <= prev {
			t.Errorf("m=%d: delay %v did not grow", m, u)
		}
		prev = u
	}
}

// TestAllNetworksCostDelayPositive exercises every implementation's Cost and
// Delay reports: each network must report some hardware and some delay, in
// the units that apply to it.
func TestAllNetworksCostDelayPositive(t *testing.T) {
	for _, n := range allNetworks(t, 4, 8) {
		c, d := n.Cost(), n.Delay()
		if c.Total() <= 0 {
			t.Errorf("%s: cost total %d not positive", n.Name(), c.Total())
		}
		if d.Units(1, 1) <= 0 {
			t.Errorf("%s: delay %v not positive", n.Name(), d.Units(1, 1))
		}
		switch n.Name() {
		case "crossbar":
			if c.Crosspoints == 0 || c.Switches != 0 {
				t.Errorf("crossbar cost should be crosspoints only: %+v", c)
			}
		case "benes", "waksman":
			if c.Switches == 0 || c.FunctionSlices != 0 {
				t.Errorf("%s cost should be switches only: %+v", n.Name(), c)
			}
			if d.FunctionUnits != 0 {
				t.Errorf("%s delay should have no function units: %+v", n.Name(), d)
			}
		case "koppelman":
			if c.AdderSlices == 0 {
				t.Errorf("koppelman should report adder slices: %+v", c)
			}
		case "bnb", "batcher", "bitonic":
			if c.Switches == 0 || c.FunctionSlices == 0 {
				t.Errorf("%s should report switches and function slices: %+v", n.Name(), c)
			}
		}
	}
	// Waksman has strictly fewer switches than Beneš at the same order.
	nets := allNetworks(t, 6, 0)
	benesC, waksmanC := nets[3].Cost().Switches, nets[4].Cost().Switches
	if waksmanC >= benesC {
		t.Errorf("waksman switches %d not below benes %d", waksmanC, benesC)
	}
	// Bitonic has more switches than the odd-even Batcher network (w=0).
	if nets[5].Cost().Switches <= nets[1].Cost().Switches-6*64/4*6 {
		// sanity guard only; exact gap checked in internal/bitonic
		t.Log("bitonic/batcher switch counts:", nets[5].Cost().Switches, nets[1].Cost().Switches)
	}
}

// TestBenesSelfRoutingTrialsValidation covers the error path.
func TestBenesSelfRoutingTrialsValidation(t *testing.T) {
	if _, _, err := BenesSelfRouting(3, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero trials accepted")
	}
}

// TestNewWaksmanNewBitonicValidation covers the constructor error paths.
func TestNewWaksmanNewBitonicValidation(t *testing.T) {
	if _, err := NewWaksman(0); err == nil {
		t.Error("NewWaksman(0) accepted")
	}
	if _, err := NewBitonic(0); err == nil {
		t.Error("NewBitonic(0) accepted")
	}
}

// TestFigRouteInstanceFacade renders the dynamic figure through the facade.
func TestFigRouteInstanceFacade(t *testing.T) {
	out, err := FigRouteInstance(3, Perm{5, 2, 7, 0, 6, 1, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fully sorted") || !strings.Contains(out, "all words delivered") {
		t.Errorf("route instance incomplete:\n%s", out)
	}
	if _, err := FigRouteInstance(0, Perm{0, 1}); err == nil {
		t.Error("FigRouteInstance(0) accepted")
	}
	if _, err := FigRouteInstance(3, Perm{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Error("FigRouteInstance accepted non-permutation")
	}
}
