package bnbnet

// This file exposes the fault-injection and self-diagnosis layer: seeded
// deterministic fault plans over the switching-element universe, the
// FaultyNetwork decorator that perturbs any Network according to a plan, and
// the probe-based Diagnoser that localizes single stuck-at faults from
// misdelivery patterns alone (DESIGN.md §8).

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// FaultKind classifies an injected fault.
type FaultKind = fault.Kind

// The fault taxonomy. Stuck-at faults pin a 2x2 switching element's control;
// DeadLink drops every word crossing an output port; TagFlip corrupts one
// routing-tag bit at an input port. The delay kinds — Slow, Stall, Jitter —
// cost time instead of correctness: they stall a route pass by the fault's
// Delay (exactly, as a head-of-line block, or as a seeded uniform draw) so
// tail-latency degradation is injectable and reproducible like every other
// fault.
const (
	FaultStuckStraight = fault.StuckStraight
	FaultStuckCross    = fault.StuckCross
	FaultDeadLink      = fault.DeadLink
	FaultTagFlip       = fault.TagFlip
	FaultSlow          = fault.Slow
	FaultStall         = fault.Stall
	FaultJitter        = fault.Jitter
)

// FaultElement addresses one 2x2 switching element: main stage, nested
// column, and switch index within the column.
type FaultElement = fault.Element

// Fault is one injected fault with its chaos window [From, Until) in cycles;
// Until <= 0 means permanent.
type Fault = fault.Fault

// FaultPlan is a reproducible fault schedule: explicit faults plus an
// optional seeded chaos process injecting transient faults at ChaosRate per
// cycle, each healing after ChaosHeal cycles.
type FaultPlan = fault.Plan

// FaultElements enumerates the switching-element universe of order m —
// every (stage, column, switch) address a stuck-at fault can hit.
func FaultElements(m int) []FaultElement { return fault.Elements(m) }

// StuckAt is a convenience plan holding a single permanent stuck-at fault.
func StuckAt(e FaultElement, cross bool) *FaultPlan { return fault.StuckAt(e, cross) }

// FaultyNetwork decorates a Network with a fault injector: every route is
// perturbed according to the plan and verified, so faults surface as errors
// (transient ones marked ErrTransient) instead of silent misdeliveries.
// Construct with New(family, m, WithFaults(plan)) or NewFaultyNetwork.
// A FaultyNetwork implements BulkRouter, so NewEngine serves it on the
// pooled path — the intended composition for retry and breaker experiments.
type FaultyNetwork struct {
	base Network
	m    *metrics.Metrics
	inj  *fault.Injector
}

var _ Network = (*FaultyNetwork)(nil)

// NewFaultyNetwork wraps an existing network with a fault plan. Stuck-at and
// chaos plans require the switch-level override capability, which only the
// BNB network offers (directly or under decorators); dead-link and tag-flip
// plans work on any family.
func NewFaultyNetwork(n Network, plan *FaultPlan, opts ...Option) (*FaultyNetwork, error) {
	if n == nil {
		return nil, fmt.Errorf("bnbnet: nil network")
	}
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.anySet(^optMetrics) {
		return nil, fmt.Errorf("bnbnet: NewFaultyNetwork accepts only WithMetrics")
	}
	return newFaulty(n, plan, o.metrics)
}

// newFaulty is the shared constructor behind NewFaultyNetwork and New's
// WithFaults option.
func newFaulty(n Network, plan *FaultPlan, m *metrics.Metrics) (*FaultyNetwork, error) {
	inj, err := fault.New(faultRouter(n), plan, fault.Options{Verify: true, Metrics: m})
	if err != nil {
		return nil, err
	}
	return &FaultyNetwork{base: n, m: m, inj: inj}, nil
}

// faultRouter picks the most capable routing surface under the decorators:
// the BNB core (which supports switch-level overrides for stuck-at faults)
// when present, else the pooled or copying adapter used by the engine.
func faultRouter(n Network) fault.Router {
	if b, ok := asSurface[*BNB](n); ok {
		return b.n
	}
	if br, ok := AsBulkRouter(n); ok {
		return bulkRouter{n: n, br: br}
	}
	return copyRouter{n: n}
}

// Unwrap returns the decorated network.
func (f *FaultyNetwork) Unwrap() Network { return f.base }

// Name implements Network.
func (f *FaultyNetwork) Name() string { return f.base.Name() }

// Inputs implements Network.
func (f *FaultyNetwork) Inputs() int { return f.base.Inputs() }

// Cost implements Network.
func (f *FaultyNetwork) Cost() Cost { return f.base.Cost() }

// Delay implements Network.
func (f *FaultyNetwork) Delay() Delay { return f.base.Delay() }

// Route implements Network: one perturbed, verified pass.
func (f *FaultyNetwork) Route(words []Word) ([]Word, error) {
	start := time.Now()
	dst := make([]Word, f.base.Inputs())
	err := f.inj.RouteInto(dst, words)
	f.m.ObserveRoute(len(words), time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// RoutePerm implements Network.
func (f *FaultyNetwork) RoutePerm(p Perm) ([]Word, error) { return f.Route(permWords(p)) }

// RouteInto implements BulkRouter: the perturbed pooled path. The injector's
// cycle clock advances once per call.
func (f *FaultyNetwork) RouteInto(dst, src []Word) error { return f.inj.RouteInto(dst, src) }

// Cycle returns the injector's cycle clock — the number of completed passes.
func (f *FaultyNetwork) Cycle() int64 { return f.inj.Cycle() }

// InjectedPasses returns the number of passes at least one fault perturbed.
func (f *FaultyNetwork) InjectedPasses() int64 { return f.inj.InjectedPasses() }

// ActiveFaultsAt returns the faults (explicit and chaos) active at the given
// cycle; the chaos schedule is a pure function of the plan's seed, so the
// answer is reproducible without routing anything.
func (f *FaultyNetwork) ActiveFaultsAt(cycle int64) []Fault { return f.inj.ActiveAt(cycle) }

// FaultDiagnosis is the outcome of a diagnostic probe run.
type FaultDiagnosis = fault.Diagnosis

// FaultDiagnoser localizes single stuck-at faults in a BNB network of order
// m by routing a fixed probe set and decoding the misdelivery pattern
// against a precomputed fault dictionary. For m <= 5 the dictionary is
// exhaustively separating: every one of the m(m+1)/2 · 2^(m-1) stuck-at
// faults maps to a unique signature (verified by ExhaustiveFaultCheck).
type FaultDiagnoser struct{ d *fault.Diagnoser }

// NewFaultDiagnoser builds the probe set and fault dictionary for order m.
// Construction routes every probe under every candidate fault, so it grows
// with the universe; it is intended for the paper's small fabric orders.
func NewFaultDiagnoser(m int) (*FaultDiagnoser, error) {
	d, err := fault.NewDiagnoser(m)
	if err != nil {
		return nil, err
	}
	return &FaultDiagnoser{d: d}, nil
}

// M returns the order the diagnoser was built for.
func (fd *FaultDiagnoser) M() int { return fd.d.M() }

// Probes returns the number of probe permutations a Diagnose run routes.
func (fd *FaultDiagnoser) Probes() int { return len(fd.d.Probes()) }

// AmbiguousGroups returns the number of fault groups the probe set cannot
// split; zero means exact localization of every single stuck-at fault.
func (fd *FaultDiagnoser) AmbiguousGroups() int { return fd.d.AmbiguousGroups() }

// Diagnose routes the probe set through the network and decodes the result:
// Healthy when every probe delivers, otherwise the dictionary lookup of the
// observed signature.
func (fd *FaultDiagnoser) Diagnose(n Network) (FaultDiagnosis, error) {
	if n == nil {
		return FaultDiagnosis{}, fmt.Errorf("bnbnet: nil network")
	}
	// Unlike faultRouter, do not unwrap: the oracle must be the network as
	// presented — unwrapping a FaultyNetwork would diagnose the healthy core
	// under its own injector.
	if br, ok := n.(BulkRouter); ok {
		return fd.d.Diagnose(bulkRouter{n: n, br: br})
	}
	return fd.d.Diagnose(copyRouter{n: n})
}

// ExhaustiveFaultCheck verifies the diagnoser of order m against its whole
// fault universe — every stuck-at fault injected, diagnosed, and compared to
// the ground truth — and returns the number of faults checked.
func ExhaustiveFaultCheck(m int) (int, error) { return fault.ExhaustiveCheck(m) }
