package bnbnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// get fetches one debug URL and returns the body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugEndpoints serves requests through a traced engine and checks the
// exposition, span dump, and pprof surfaces over real HTTP.
func TestDebugEndpoints(t *testing.T) {
	n, err := New("bnb", 4)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	tr := NewTracer(64)
	e, err := NewEngine(n, WithWorkers(2), WithMetrics(m), WithTracer(tr), WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	addr := e.DebugAddr()
	if addr == "" {
		t.Fatal("WithDebugAddr engine reports no DebugAddr")
	}
	if e.Tracer() != tr {
		t.Fatal("Tracer() did not return the WithTracer ring")
	}
	const reqs = 5
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < reqs; i++ {
		out, errs := e.RoutePermBatch([]Perm{RandomPerm(n.Inputs(), rng)})
		if errs[0] != nil || out[0] == nil {
			t.Fatalf("request %d failed: %v", i, errs[0])
		}
	}

	code, body := get(t, "http://"+addr+"/debug/bnb/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if !strings.Contains(body, fmt.Sprintf("bnb_routes_total %d", reqs)) {
		t.Fatalf("exposition missing routes counter:\n%s", body)
	}
	if !strings.Contains(body, `bnb_route_latency_seconds_bucket{le="+Inf"} `) {
		t.Fatalf("exposition missing histogram:\n%s", body)
	}

	code, body = get(t, "http://"+addr+"/debug/bnb/traces?n=3")
	if code != http.StatusOK {
		t.Fatalf("traces status %d", code)
	}
	var dump struct {
		Capacity  int         `json:"capacity"`
		Published uint64      `json:"published"`
		Spans     []TraceSpan `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("traces dump is not JSON: %v\n%s", err, body)
	}
	if dump.Capacity != 64 || dump.Published != reqs || len(dump.Spans) != 3 {
		t.Fatalf("traces dump = capacity %d published %d spans %d, want 64/%d/3",
			dump.Capacity, dump.Published, len(dump.Spans), reqs)
	}
	if dump.Spans[0].Kind != "request" || dump.Spans[0].Words != n.Inputs() {
		t.Fatalf("span shape off: %+v", dump.Spans[0])
	}

	if code, body = get(t, "http://"+addr+"/debug/bnb/traces?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n param: status %d body %q", code, body)
	}
	if code, _ = get(t, "http://"+addr+"/debug/bnb/traces?slow=1"); code != http.StatusOK {
		t.Fatalf("slow dump status %d", code)
	}
	if code, body = get(t, "http://"+addr+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("pprof cmdline: status %d", code)
	}
	if code, _ = get(t, "http://"+addr+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("expvar status %d", code)
	}
}

// TestDebugServerNilSurfaces checks a standalone Serve with nothing attached
// still answers every endpoint.
func TestDebugServerNilSurfaces(t *testing.T) {
	d, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	code, body := get(t, "http://"+d.Addr()+"/debug/bnb/metrics")
	if code != http.StatusOK || !strings.Contains(body, "bnb_routes_total 0") {
		t.Fatalf("nil-metrics exposition: status %d\n%s", code, body)
	}
	code, body = get(t, "http://"+d.Addr()+"/debug/bnb/traces")
	if code != http.StatusOK || !strings.Contains(body, `"spans": []`) {
		t.Fatalf("nil-tracer dump: status %d\n%s", code, body)
	}
}

// TestDebugServerShutdownLeak pins the goroutine-leak contract: starting and
// closing debug servers (standalone and engine-owned) leaves no serving
// goroutine behind.
func TestDebugServerShutdownLeak(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		d, err := Serve("127.0.0.1:0", NewMetrics(), NewTracer(16))
		if err != nil {
			t.Fatal(err)
		}
		if code, _ := get(t, "http://"+d.Addr()+"/debug/bnb/metrics"); code != http.StatusOK {
			t.Fatalf("round %d: status %d", i, code)
		}
		if err := d.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("round %d: close: %v", i, err)
		}

		n, err := New("bnb", 3)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(n, WithTracer(NewTracer(16)), WithDebugAddr("127.0.0.1:0"))
		if err != nil {
			t.Fatal(err)
		}
		if e.DebugAddr() == "" {
			t.Fatal("engine-owned server has no address")
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// The HTTP client keeps idle connections briefly; allow them to die.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
			baseline, got, buf[:runtime.Stack(buf, true)])
	}
}
