# Convenience targets for the BNB reproduction.

GO ?= go

.PHONY: all build vet test test-short bench microbench check verify verify-cluster repro figures fuzz chaos soak-reconfig soak-tail soak-cluster clean

all: build vet test

# Full pre-merge gate: vet (plus staticcheck when installed), the
# race-detector suite, a 32-bit cross-compile (pins int-width bugs like the
# rotor truncation), the zero-allocation pin on the pooled routing hot path,
# a short fuzz smoke of the fault-injected pooled path, and the differential
# verification battery up to m=4.
check:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	GOARCH=386 $(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run=TestRouteAllocs .
	$(GO) test -run='^$$' -fuzz FuzzPooledPathUnderFault -fuzztime 10s .
	$(GO) run ./cmd/bnbverify -maxm 4

# Differential + metamorphic verification of every registered family:
# exhaustive for N <= 8, the full BPC class at m=4, structured, random and
# adversarial batteries; exits nonzero on any divergence.
verify:
	$(GO) run ./cmd/bnbverify -maxm 4

# Cluster differential battery: a 4-shard fabric at each order is compared
# word-for-word against the monolithic aggregate network over the same
# sweep batteries (exhaustive N! at the small end).
verify-cluster:
	$(GO) run ./cmd/bnbverify -cluster -shards 4 -maxm 3

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Perf-trajectory smoke: run the bnbbench harness with quick sample counts
# into a scratch dir and validate the output against the bnbbench/v6
# schema. The committed BENCH_<m>.json files are full runs; refresh them
# after perf work with `$(GO) run ./cmd/bnbbench -m 3,5,7 -out .`.
bench:
	$(GO) run ./cmd/bnbbench -quick -m 5 -out /tmp
	$(GO) run ./cmd/bnbbench -validate /tmp/BENCH_5.json

# Raw go-test microbenchmarks (per-stage and per-family numbers).
microbench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table, equation check, claim, and extension study.
repro:
	$(GO) run ./cmd/bnbtables -all

# Regenerate the paper's figures as ASCII.
figures:
	$(GO) run ./cmd/netviz -fig 1
	$(GO) run ./cmd/netviz -fig 3
	$(GO) run ./cmd/netviz -fig 4
	$(GO) run ./cmd/netviz -fig 5

# Machine-readable report of the full evaluation.
json:
	$(GO) run ./cmd/bnbtables -json

fuzz:
	$(GO) test -fuzz FuzzAllNetworksAgree -fuzztime 30s .

# Fault-injected soak under the race detector: the chaos, degradation,
# and resilience suites, then a fabricsim run with 1% transient faults that
# must report 100% eventual delivery, and the supervised-planes availability
# run that must deliver every request despite a faulty plane. Both fabricsim
# invocations exit nonzero on any misdelivery.
chaos:
	$(GO) test -race -run 'Chaos|Degraded|Fault|Breaker|Retry|Fallback|Diagnos|Supervised|Plane|Shed' ./...
	$(GO) run -race ./cmd/fabricsim -net bnb -m 5 -traffic permutation -cycles 1000 -chaos 0.01
	$(GO) run -race ./cmd/fabricsim -net bnb -m 5 -planes 3 -chaos 0.01 -requests 10000

# Hitless-reconfiguration soak under the race detector: the lifecycle and
# rollout suites (drain contracts, plane add/remove, cache pre-warm, the
# 10k-request chaos rollout, the 100-iteration membership-churn leak check),
# the compiled-plan round-trip fuzz smoke, then a fabricsim run performing
# three live Reconfigure rollouts under 1% chaos that must deliver every
# request — the run exits nonzero on any loss or misroute.
soak-reconfig:
	$(GO) test -race -run 'Drain|Reconfig|Lifecycle|AddRemove|Shutdown' ./...
	$(GO) test -run='^$$' -fuzz FuzzPlanRoundTrip -fuzztime 10s .
	$(GO) run -race ./cmd/fabricsim -net bnb -m 5 -planes 3 -chaos 0.01 -reconfig 3 -requests 10000

# Tail-tolerance soak under the race detector: the hedge-race, slow-plane,
# poison-ledger and QoS suites, the 10k-request acceptance soak (one of
# three planes under 20ms-stall chaos; hedged p99 must stay within 3x a
# fault-free fleet's and the stalling plane must cycle through quarantine
# and readmission), then a fabricsim run with the same stall chaos under
# auto hedging that must deliver every request.
soak-tail:
	$(GO) test -race -run 'Hedge|Slow|Poison|Class|Background|Admit|Latency|Tail' ./...
	$(GO) test -race -run TestTailToleranceSoak -count=1 -timeout 300s .
	$(GO) run -race ./cmd/fabricsim -net bnb -m 5 -planes 3 -slow 20ms -hedge auto -requests 10000

# Cluster-fabric soak under the race detector: the cluster and serving
# suites, then a fabricsim cluster run with a live shard add and drain
# mid-stream — every request must deliver word-for-word or the run exits
# nonzero — and the bnbserve membership test hammering the HTTP and TCP
# fronts during shard churn.
soak-cluster:
	$(GO) test -race -run 'Cluster|Membership|Coloring|Decompose' ./...
	$(GO) test -race -run 'TestLiveMembership|TestHTTPRoute|TestTCPRoute' ./cmd/bnbserve
	$(GO) run -race ./cmd/fabricsim -net bnb -m 4 -cluster 4 -requests 2000

clean:
	$(GO) clean ./...
