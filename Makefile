# Convenience targets for the BNB reproduction.

GO ?= go

.PHONY: all build vet test test-short bench check repro figures fuzz clean

all: build vet test

# Full pre-merge gate: vet, the race-detector suite, and the
# zero-allocation pin on the pooled routing hot path.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run=TestRouteAllocs .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table, equation check, claim, and extension study.
repro:
	$(GO) run ./cmd/bnbtables -all

# Regenerate the paper's figures as ASCII.
figures:
	$(GO) run ./cmd/netviz -fig 1
	$(GO) run ./cmd/netviz -fig 3
	$(GO) run ./cmd/netviz -fig 4
	$(GO) run ./cmd/netviz -fig 5

# Machine-readable report of the full evaluation.
json:
	$(GO) run ./cmd/bnbtables -json

fuzz:
	$(GO) test -fuzz FuzzAllNetworksAgree -fuzztime 30s .

clean:
	$(GO) clean ./...
