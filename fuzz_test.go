package bnbnet

import (
	"testing"
)

// permFromBytes derives a permutation of n elements deterministically from
// fuzz input: a Fisher-Yates shuffle driven by the data bytes (cycled). Any
// byte string yields a valid permutation, so the fuzzer explores routing
// behaviour, not input validation.
func permFromBytes(n int, data []byte) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	if len(data) == 0 {
		return p
	}
	k := 0
	next := func() int {
		b := int(data[k%len(data)])
		k++
		return b
	}
	for i := n - 1; i > 0; i-- {
		j := (next()<<8 | next()) % (i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FuzzAllNetworksAgree routes the fuzz-derived permutation through every
// network and requires all of them to deliver — a differential fuzz harness
// over seven independent implementations of the same contract.
func FuzzAllNetworksAgree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x01, 0x7f})
	f.Add([]byte("bnb-self-routing-permutation-network"))
	const m = 4
	nets := make([]Network, 0, 7)
	for _, build := range []func() (Network, error){
		func() (Network, error) { return NewBNB(m, 0) },
		func() (Network, error) { return NewBatcher(m, 0) },
		func() (Network, error) { return NewKoppelman(m, 0) },
		func() (Network, error) { return NewBenes(m) },
		func() (Network, error) { return NewWaksman(m) },
		func() (Network, error) { return NewBitonic(m) },
		func() (Network, error) { return NewCrossbar(1 << m) },
	} {
		n, err := build()
		if err != nil {
			f.Fatal(err)
		}
		nets = append(nets, n)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := permFromBytes(1<<m, data)
		for _, n := range nets {
			out, err := n.RoutePerm(p)
			if err != nil {
				t.Fatalf("%s: %v", n.Name(), err)
			}
			for j, wd := range out {
				if wd.Addr != j {
					t.Fatalf("%s misrouted output %d (perm %v)", n.Name(), j, p)
				}
				if int(out[j].Data) < 0 || int(out[j].Data) >= 1<<m {
					t.Fatalf("%s corrupted payload at output %d", n.Name(), j)
				}
			}
			// Payload integrity: output p[i] carries i.
			for i, d := range p {
				if out[d].Data != uint64(i) {
					t.Fatalf("%s lost payload of input %d", n.Name(), i)
				}
			}
		}
	})
}

// FuzzCompletePerm checks the padding helper against arbitrary partial
// assignments: whenever Complete accepts, the result must be a valid
// permutation preserving the defined entries; whenever it rejects, the
// input must genuinely contain a duplicate or out-of-range entry.
func FuzzCompletePerm(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{255, 255})
	f.Add([]byte{7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		n := len(data)
		partial := make([]int, n)
		for i, b := range data {
			if b >= 128 {
				partial[i] = -1
			} else {
				partial[i] = int(b) % (n + 1) // occasionally out of range
			}
		}
		p, err := CompletePerm(partial)
		if err != nil {
			// Must be a real violation.
			seen := map[int]bool{}
			violation := false
			for _, d := range partial {
				if d == -1 {
					continue
				}
				if d < 0 || d >= n || seen[d] {
					violation = true
					break
				}
				seen[d] = true
			}
			if !violation {
				t.Fatalf("Complete rejected a repairable input %v: %v", partial, err)
			}
			return
		}
		if len(p) != n {
			t.Fatalf("Complete returned %d entries for %d inputs", len(p), n)
		}
		seen := make([]bool, n)
		for i, d := range p {
			if d < 0 || d >= n || seen[d] {
				t.Fatalf("Complete produced invalid permutation %v", p)
			}
			seen[d] = true
			if partial[i] != -1 && partial[i] != d {
				t.Fatalf("Complete changed defined entry %d", i)
			}
		}
	})
}

// FuzzBNBPayloads routes fixed permutations with fuzz-controlled payloads
// and verifies bit-exact delivery, exercising the slaved-slice model.
func FuzzBNBPayloads(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	n, err := NewBNB(3, 64)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := permFromBytes(8, data)
		words := make([]Word, 8)
		for i, d := range p {
			var payload uint64
			for b := 0; b < 8; b++ {
				if len(data) > 0 {
					payload = payload<<8 | uint64(data[(i*8+b)%len(data)])
				}
			}
			words[i] = Word{Addr: d, Data: payload}
		}
		out, err := n.Route(words)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range p {
			if out[d].Data != words[i].Data {
				t.Fatalf("payload of input %d corrupted: %#x -> %#x", i, words[i].Data, out[d].Data)
			}
		}
	})
}
