package bnbnet

import (
	"errors"
	"testing"
)

// FuzzPooledPathUnderFault drives the pooled zero-allocation path at a
// fuzz-chosen order with a fuzz-derived permutation, healthy and under a
// single injected fault. Healthy passes must deliver bit-exactly; faulty
// passes must either surface an error or deliver exactly (a stuck-at that
// matches the natural switch orientation never fires) — and the
// always-corrupting fault kinds (dead link, tag flip) must be detected.
func FuzzPooledPathUnderFault(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 9})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x01})
	f.Add([]byte("chaos engineering"))
	nets := make(map[int]*BNB)
	for m := 1; m <= 5; m++ {
		b, err := NewBNB(m, 0)
		if err != nil {
			f.Fatal(err)
		}
		nets[m] = b
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m := 1
		if len(data) > 0 {
			m = 1 + int(data[0])%5
			data = data[1:]
		}
		b := nets[m]
		n := 1 << m
		p := permFromBytes(n, data)
		src := make([]Word, n)
		for i, d := range p {
			src[i] = Word{Addr: d, Data: uint64(i)}
		}
		dst := make([]Word, n)
		if err := b.RouteInto(dst, src); err != nil {
			t.Fatalf("healthy pooled route rejected valid permutation %v: %v", p, err)
		}
		for i, d := range p {
			if dst[d].Addr != d || dst[d].Data != uint64(i) {
				t.Fatalf("healthy pooled route misdelivered input %d of %v", i, p)
			}
		}

		// One injected fault, selected by the tail of the fuzz input.
		pick := 0
		for _, c := range data {
			pick = pick*31 + int(c)
		}
		if pick < 0 {
			pick = -pick
		}
		elems := FaultElements(m)
		var ft Fault
		switch pick % 4 {
		case 0:
			ft = Fault{Kind: FaultStuckStraight, Elem: elems[pick%len(elems)]}
		case 1:
			ft = Fault{Kind: FaultStuckCross, Elem: elems[pick%len(elems)]}
		case 2:
			ft = Fault{Kind: FaultDeadLink, Port: pick % n}
		default:
			ft = Fault{Kind: FaultTagFlip, Port: pick % n, Bit: pick % m}
		}
		fn, err := NewFaultyNetwork(b, &FaultPlan{Faults: []Fault{ft}})
		if err != nil {
			t.Fatalf("fault %v rejected: %v", ft, err)
		}
		fdst := make([]Word, n)
		err = fn.RouteInto(fdst, src)
		if err == nil {
			for j := range fdst {
				if fdst[j].Addr != j {
					t.Fatalf("silent misrouting under %v: output %d holds address %d (perm %v)",
						ft, j, fdst[j].Addr, p)
				}
			}
			if ft.Kind == FaultDeadLink || ft.Kind == FaultTagFlip {
				t.Fatalf("corrupting fault %v went undetected (perm %v)", ft, p)
			}
		}
	})
}

// permFromBytes derives a permutation of n elements deterministically from
// fuzz input: a Fisher-Yates shuffle driven by the data bytes (cycled). Any
// byte string yields a valid permutation, so the fuzzer explores routing
// behaviour, not input validation.
func permFromBytes(n int, data []byte) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	if len(data) == 0 {
		return p
	}
	k := 0
	next := func() int {
		b := int(data[k%len(data)])
		k++
		return b
	}
	for i := n - 1; i > 0; i-- {
		j := (next()<<8 | next()) % (i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FuzzPlanRoundTrip drives the compiled-plan surface with fuzz-derived
// permutations at fuzz-chosen orders: Compile must accept every valid
// permutation, Replay must deliver word-for-word what the live self-routing
// pass delivers, and a batch whose addresses no longer match the plan must
// be rejected with ErrPlanMismatch instead of misdelivering — the contract
// the reconfiguration pre-warm path leans on when it replays old plans on a
// fresh plane.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 2})
	f.Add([]byte{0xff, 0x3c, 0x00, 0x81})
	f.Add([]byte("hitless reconfiguration"))
	nets := make(map[int]*BNB)
	for m := 1; m <= 5; m++ {
		b, err := NewBNB(m, 0)
		if err != nil {
			f.Fatal(err)
		}
		nets[m] = b
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m := 1
		if len(data) > 0 {
			m = 1 + int(data[0])%5
			data = data[1:]
		}
		b := nets[m]
		n := 1 << m
		p := permFromBytes(n, data)
		pl, err := b.Compile(p)
		if err != nil {
			t.Fatalf("Compile rejected valid permutation %v: %v", p, err)
		}
		src := make([]Word, n)
		for i, d := range p {
			src[i] = Word{Addr: d, Data: uint64(i) | uint64(d)<<32}
		}
		live := make([]Word, n)
		if err := b.RouteInto(live, src); err != nil {
			t.Fatalf("live route rejected %v: %v", p, err)
		}
		replayed := make([]Word, n)
		if err := b.Replay(pl, replayed, src); err != nil {
			t.Fatalf("Replay rejected the batch it was compiled from (%v): %v", p, err)
		}
		for j := range live {
			if replayed[j] != live[j] {
				t.Fatalf("replay diverges from live routing at output %d: %+v vs %+v (perm %v)",
					j, replayed[j], live[j], p)
			}
		}
		// Mutate one source address so the batch no longer matches the plan:
		// Replay must refuse with ErrPlanMismatch, never misdeliver.
		pick := 0
		for _, c := range data {
			pick = pick*17 + int(c)
		}
		if pick < 0 {
			pick = -pick
		}
		i := pick % n
		mutated := make([]Word, n)
		copy(mutated, src)
		mutated[i].Addr = (mutated[i].Addr + 1) % n
		if err := b.Replay(pl, replayed, mutated); !errors.Is(err, ErrPlanMismatch) {
			t.Fatalf("Replay of a mutated batch (input %d readdressed): err = %v, want ErrPlanMismatch", i, err)
		}
		// A plan from a different order must be rejected the same way.
		if m > 1 {
			other := nets[m-1]
			foreign := make([]Word, other.Inputs())
			for j := range foreign {
				foreign[j] = Word{Addr: j, Data: uint64(j)}
			}
			if err := other.Replay(pl, make([]Word, other.Inputs()), foreign); !errors.Is(err, ErrPlanMismatch) {
				t.Fatalf("Replay of an order-%d plan on an order-%d network: err = %v, want ErrPlanMismatch", m, m-1, err)
			}
		}
	})
}

// FuzzAllNetworksAgree routes the fuzz-derived permutation through every
// network and requires all of them to deliver — a differential fuzz harness
// over seven independent implementations of the same contract.
func FuzzAllNetworksAgree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x01, 0x7f})
	f.Add([]byte("bnb-self-routing-permutation-network"))
	const m = 4
	nets := make([]Network, 0, 7)
	for _, build := range []func() (Network, error){
		func() (Network, error) { return NewBNB(m, 0) },
		func() (Network, error) { return New("batcher", m) },
		func() (Network, error) { return New("koppelman", m) },
		func() (Network, error) { return New("benes", m) },
		func() (Network, error) { return New("waksman", m) },
		func() (Network, error) { return New("bitonic", m) },
		func() (Network, error) { return NewCrossbar(1 << m) },
	} {
		n, err := build()
		if err != nil {
			f.Fatal(err)
		}
		nets = append(nets, n)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := permFromBytes(1<<m, data)
		for _, n := range nets {
			out, err := n.RoutePerm(p)
			if err != nil {
				t.Fatalf("%s: %v", n.Name(), err)
			}
			for j, wd := range out {
				if wd.Addr != j {
					t.Fatalf("%s misrouted output %d (perm %v)", n.Name(), j, p)
				}
				if int(out[j].Data) < 0 || int(out[j].Data) >= 1<<m {
					t.Fatalf("%s corrupted payload at output %d", n.Name(), j)
				}
			}
			// Payload integrity: output p[i] carries i.
			for i, d := range p {
				if out[d].Data != uint64(i) {
					t.Fatalf("%s lost payload of input %d", n.Name(), i)
				}
			}
		}
	})
}

// FuzzCompletePerm checks the padding helper against arbitrary partial
// assignments: whenever Complete accepts, the result must be a valid
// permutation preserving the defined entries; whenever it rejects, the
// input must genuinely contain a duplicate or out-of-range entry.
func FuzzCompletePerm(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{255, 255})
	f.Add([]byte{7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		n := len(data)
		partial := make([]int, n)
		for i, b := range data {
			if b >= 128 {
				partial[i] = -1
			} else {
				partial[i] = int(b) % (n + 1) // occasionally out of range
			}
		}
		p, err := CompletePerm(partial)
		if err != nil {
			// Must be a real violation.
			seen := map[int]bool{}
			violation := false
			for _, d := range partial {
				if d == -1 {
					continue
				}
				if d < 0 || d >= n || seen[d] {
					violation = true
					break
				}
				seen[d] = true
			}
			if !violation {
				t.Fatalf("Complete rejected a repairable input %v: %v", partial, err)
			}
			return
		}
		if len(p) != n {
			t.Fatalf("Complete returned %d entries for %d inputs", len(p), n)
		}
		seen := make([]bool, n)
		for i, d := range p {
			if d < 0 || d >= n || seen[d] {
				t.Fatalf("Complete produced invalid permutation %v", p)
			}
			seen[d] = true
			if partial[i] != -1 && partial[i] != d {
				t.Fatalf("Complete changed defined entry %d", i)
			}
		}
	})
}

// FuzzBNBPayloads routes fixed permutations with fuzz-controlled payloads
// and verifies bit-exact delivery, exercising the slaved-slice model.
func FuzzBNBPayloads(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	n, err := NewBNB(3, 64)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := permFromBytes(8, data)
		words := make([]Word, 8)
		for i, d := range p {
			var payload uint64
			for b := 0; b < 8; b++ {
				if len(data) > 0 {
					payload = payload<<8 | uint64(data[(i*8+b)%len(data)])
				}
			}
			words[i] = Word{Addr: d, Data: payload}
		}
		out, err := n.Route(words)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range p {
			if out[d].Data != words[i].Data {
				t.Fatalf("payload of input %d corrupted: %#x -> %#x", i, words[i].Data, out[d].Data)
			}
		}
	})
}
