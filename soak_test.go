package bnbnet

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// Soak tests exercise the large-N paths (allocation strategy, index
// arithmetic at depth, recursion) that the fast suites never reach. They
// are skipped under -short.

func TestSoakBNBLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(4096))
	net, err := NewBNB(12, 32) // N = 4096
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		p := RandomPerm(net.Inputs(), rng)
		words := make([]Word, net.Inputs())
		for i, d := range p {
			words[i] = Word{Addr: d, Data: rng.Uint64() & (1<<32 - 1)}
		}
		out, err := net.Route(words)
		if err != nil {
			t.Fatal(err)
		}
		for j, wd := range out {
			if wd.Addr != j {
				t.Fatalf("misrouted at N=4096, output %d", j)
			}
		}
		// Parallel evaluation agrees at scale.
		par, err := net.RouteParallel(words, 0)
		if err != nil {
			t.Fatal(err)
		}
		for j := range out {
			if out[j] != par[j] {
				t.Fatalf("parallel disagreement at output %d", j)
			}
		}
	}
}

func TestSoakAllNetworksN1024(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(1024))
	for _, n := range allNetworks(t, 10, 8) {
		p := RandomPerm(n.Inputs(), rng)
		out, err := n.RoutePerm(p)
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		for j, wd := range out {
			if wd.Addr != j {
				t.Fatalf("%s misrouted at N=1024", n.Name())
			}
		}
	}
}

func TestSoakCircuitLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(7))
	net, err := NewBNB(11, 64) // N = 2048
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPerm(net.Inputs(), rng)
	circuit, err := net.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]Word, net.Inputs())
	for i := range words {
		words[i] = Word{Data: rng.Uint64()}
	}
	out, err := circuit.Send(words)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range p {
		if out[d] != words[i] {
			t.Fatalf("circuit replay failed at input %d", i)
		}
	}
}

// TestSoakReconfigLifecycleLeakFree hammers the runtime-membership surface —
// 100 add/remove iterations with a full Reconfigure rollout every tenth —
// with live traffic mixed in, then drains and closes, and requires the
// goroutine count to return to baseline: no leaked drain waiter, no leaked
// probe loop, no straggler from any of the hundred churned planes.
func TestSoakReconfigLifecycleLeakFree(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	runtime.GC()
	baseline := runtime.NumGoroutine()
	s, err := NewSupervised("bnb", 3, WithPlanes(2), WithWorkers(2), WithHealthInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rng := rand.New(rand.NewSource(100))
	n := s.Inputs()
	for i := 0; i < 100; i++ {
		id, err := s.AddPlane(ctx)
		if err != nil {
			t.Fatalf("iteration %d: AddPlane: %v", i, err)
		}
		if _, errs := s.RoutePermBatch([]Perm{RandomPerm(n, rng)}); errs[0] != nil {
			t.Fatalf("iteration %d: request on the grown set: %v", i, errs[0])
		}
		if err := s.RemovePlane(ctx, id); err != nil {
			t.Fatalf("iteration %d: RemovePlane(%d): %v", i, id, err)
		}
		if i%10 == 9 {
			if err := s.Reconfigure(ctx, ReconfigWarmPlans(4)); err != nil {
				t.Fatalf("iteration %d: Reconfigure: %v", i, err)
			}
		}
	}
	if got := s.Planes(); got != 2 {
		t.Errorf("Planes after the churn = %d, want 2", got)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked across 100 membership iterations: baseline %d, now %d\n%s",
			baseline, got, buf[:runtime.Stack(buf, true)])
	}
}

func TestSoakFabricLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	net, err := NewBNB(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewFabric(net, WithVOQ())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sw.Run(UniformTraffic{Load: 0.95}, 10000, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered+stats.Backlog != stats.Offered {
		t.Error("conservation violated over a long run")
	}
	if tp := stats.Throughput(64); tp < 0.85 {
		t.Errorf("long-run VOQ throughput %v below 0.85 at load 0.95", tp)
	}
}
