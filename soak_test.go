package bnbnet

import (
	"math/rand"
	"testing"
)

// Soak tests exercise the large-N paths (allocation strategy, index
// arithmetic at depth, recursion) that the fast suites never reach. They
// are skipped under -short.

func TestSoakBNBLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(4096))
	net, err := NewBNB(12, 32) // N = 4096
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		p := RandomPerm(net.Inputs(), rng)
		words := make([]Word, net.Inputs())
		for i, d := range p {
			words[i] = Word{Addr: d, Data: rng.Uint64() & (1<<32 - 1)}
		}
		out, err := net.Route(words)
		if err != nil {
			t.Fatal(err)
		}
		for j, wd := range out {
			if wd.Addr != j {
				t.Fatalf("misrouted at N=4096, output %d", j)
			}
		}
		// Parallel evaluation agrees at scale.
		par, err := net.RouteParallel(words, 0)
		if err != nil {
			t.Fatal(err)
		}
		for j := range out {
			if out[j] != par[j] {
				t.Fatalf("parallel disagreement at output %d", j)
			}
		}
	}
}

func TestSoakAllNetworksN1024(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(1024))
	for _, n := range allNetworks(t, 10, 8) {
		p := RandomPerm(n.Inputs(), rng)
		out, err := n.RoutePerm(p)
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		for j, wd := range out {
			if wd.Addr != j {
				t.Fatalf("%s misrouted at N=1024", n.Name())
			}
		}
	}
}

func TestSoakCircuitLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(7))
	net, err := NewBNB(11, 64) // N = 2048
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPerm(net.Inputs(), rng)
	circuit, err := net.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]Word, net.Inputs())
	for i := range words {
		words[i] = Word{Data: rng.Uint64()}
	}
	out, err := circuit.Send(words)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range p {
		if out[d] != words[i] {
			t.Fatalf("circuit replay failed at input %d", i)
		}
	}
}

func TestSoakFabricLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	net, err := NewBNB(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewFabric(net, WithVOQ())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sw.Run(UniformTraffic{Load: 0.95}, 10000, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered+stats.Backlog != stats.Offered {
		t.Error("conservation violated over a long run")
	}
	if tp := stats.Throughput(64); tp < 0.85 {
		t.Errorf("long-run VOQ throughput %v below 0.85 at load 0.95", tp)
	}
}
