package bnbnet

// This file collects every deprecated name in the package under one
// policy:
//
//   - A constructor, type or method superseded by the unified surface —
//     New(family, m, opts...) for construction, AsPlanRouter /
//     Compile/Replay for circuit switching, Stats() and Publish(name) for
//     observability — is kept as a thin veneer delegating to its
//     replacement, never re-implemented.
//   - Each veneer carries a standard "Deprecated:" comment naming the
//     replacement, so godoc, gopls and staticcheck steer callers off it.
//   - Veneers keep working indefinitely but receive no new behavior; new
//     capabilities land only on the unified surface. Nothing in this
//     repository (examples, CLIs, benchmarks) calls a veneer except the
//     tests pinning their delegation.
//
// Everything below is a veneer; the unified surface lives in bnbnet.go,
// registry.go, plan.go and router.go.

import "fmt"

// NewBatcher constructs Batcher's odd-even merge sorting network used as a
// self-routing permutation network.
//
// Deprecated: Use New("batcher", m, WithDataBits(w)).
func NewBatcher(m, w int) (Network, error) { return New("batcher", m, WithDataBits(w)) }

// NewKoppelman constructs the functional analogue of the Koppelman-Oruç
// self-routing permutation network (see DESIGN.md §3 for the substitution).
//
// Deprecated: Use New("koppelman", m, WithDataBits(w)).
func NewKoppelman(m, w int) (Network, error) { return New("koppelman", m, WithDataBits(w)) }

// NewBenes constructs the Beneš rearrangeable network routed by the global
// looping algorithm. Unlike the self-routing networks, every Route call
// runs the centralized set-up computation; its cost report therefore counts
// only the data path (switches), with the set-up overhead discussed in
// EXPERIMENTS.md.
//
// Deprecated: Use New("benes", m).
func NewBenes(m int) (Network, error) { return New("benes", m) }

// NewWaksman constructs Waksman's permutation network (the paper's
// reference [5]): the minimum-switch rearrangeable design, N·logN − N + 1
// switches, routed per call by the global looping algorithm.
//
// Deprecated: Use New("waksman", m).
func NewWaksman(m int) (Network, error) { return New("waksman", m) }

// NewBitonic constructs Batcher's bitonic sorting network — the other
// sorter of reference [9], with the same N/4·log^2 N comparator leading
// term as the odd-even merge network but N·logN/2 − N + 1 more comparators.
//
// Deprecated: Use New("bitonic", m).
func NewBitonic(m int) (Network, error) { return New("bitonic", m) }

// NewFabricSwitch wraps a Network as the routing core of a FIFO
// input-queued cell switch.
//
// Deprecated: Use NewFabric(n).
func NewFabricSwitch(n Network) (*FabricSwitch, error) {
	f, err := NewFabric(n)
	if err != nil {
		return nil, err
	}
	return f.(*FabricSwitch), nil
}

// NewVOQFabricSwitch wraps a Network as the routing core of a virtual-
// output-queued cell switch.
//
// Deprecated: Use NewFabric(n, WithVOQ()).
func NewVOQFabricSwitch(n Network) (*VOQFabricSwitch, error) {
	f, err := NewFabric(n, WithVOQ())
	if err != nil {
		return nil, err
	}
	return f.(*VOQFabricSwitch), nil
}

// IntoRouter is the original name of BulkRouter.
//
// Deprecated: Use BulkRouter.
type IntoRouter = BulkRouter

// Circuit is a recorded switch configuration realizing one permutation —
// the network's circuit-switched mode. It is a thin veneer over the
// compiled-plan surface (Plan, BNB.Compile, BNB.Replay), which adds address
// verification, in-place replay, and cacheability.
//
// Deprecated: Use BNB.Compile and BNB.Replay (or the PlanRouter surface).
type Circuit struct {
	b  *BNB
	pl *Plan
}

// Connect runs the self-routing control plane once for the permutation and
// returns the recorded circuit.
//
// Deprecated: Use BNB.Compile.
func (b *BNB) Connect(p Perm) (*Circuit, error) {
	pl, err := b.Compile(p)
	if err != nil {
		return nil, err
	}
	return &Circuit{b: b, pl: pl}, nil
}

// Send replays the circuit over a fresh batch of payloads: word i lands on
// the output the circuit's permutation assigned to input i; addresses in
// the words are ignored (the data path consults only the stored switch
// states, exactly like the hardware's slaved slices).
//
// Deprecated: Use BNB.Replay, which additionally verifies the batch
// against the plan's permutation.
func (c *Circuit) Send(words []Word) ([]Word, error) {
	return c.b.n.ApplyPlan(c.pl.p, words)
}

// Switches returns the number of stored switch states,
// (N/2)·(1/2)logN(logN+1).
//
// Deprecated: Use Plan.Switches via Circuit.Plan.
func (c *Circuit) Switches() int { return c.pl.Switches() }

// Plan returns the compiled plan backing the circuit, for use with the
// Replay fast path.
func (c *Circuit) Plan() *Plan { return c.pl }

// PlanCacheStats returns the plan cache's counters; the zero stats without
// WithPlanCache.
//
// Deprecated: Use Stats, whose PlanCaches field carries the same counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.pc == nil {
		return PlanCacheStats{}
	}
	return e.pc.cache.Stats()
}

// PublishPlanCache registers the plan cache's live stats under the given
// expvar name on /debug/vars. It returns an error if the name is taken
// (expvar itself would panic) or if the engine has no plan cache.
//
// Deprecated: Use Publish, which exposes the plan-cache counters inside
// the unified Stats.
func (e *Engine) PublishPlanCache(name string) error {
	if e.pc == nil {
		return fmt.Errorf("bnbnet: engine has no plan cache (WithPlanCache)")
	}
	return publishExpvar(name, func() any { return e.pc.cache.Stats() })
}

// PlanCacheStats returns every live plane's plan-cache counters, in
// membership order (entry i belongs to PlaneIDs()[i]; uncached planes —
// faulted ones, or all of them under WithPlanCache(0) — report zero stats).
// Nil when plan caching is disabled.
//
// Deprecated: Use Stats, whose PlanCaches field carries the same counters.
func (s *Supervised) PlanCacheStats() []PlanCacheStats {
	if s.pcs == nil {
		return nil
	}
	return s.pcs.statsFor(s.sup.PlaneIDs())
}

// PublishPlanCache registers the per-plane plan-cache stats under the given
// expvar name on /debug/vars. It returns an error if the name is taken
// (expvar itself would panic) or if plan caching is disabled.
//
// Deprecated: Use Publish, which exposes the plan-cache counters inside
// the unified Stats.
func (s *Supervised) PublishPlanCache(name string) error {
	if s.pcs == nil {
		return fmt.Errorf("bnbnet: supervised planes have no plan cache (WithPlanCache)")
	}
	return publishExpvar(name, func() any { return s.pcs.statsFor(s.sup.PlaneIDs()) })
}
