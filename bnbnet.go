// Package bnbnet is a reproduction of "BNB Self-Routing Permutation
// Network" (Sungchang Lee and Mi Lu, ICDCS 1991): a self-routing network
// that realizes all N! permutations of its N = 2^m inputs by running an
// MSB-first binary radix sort over a generalized baseline network, using
// tree-structured one-bit arbiters ("splitters") instead of the log N-bit
// comparators of Batcher's sorting network.
//
// The package exposes:
//
//   - the BNB network itself (New("bnb", m) or NewBNB, with stage tracing,
//     parallel simulation and compiled Compile/Replay route plans) and the
//     paper's comparison baselines — Batcher's odd-even sorting network
//     and bitonic sorter, a functional analogue of the Koppelman-Oruç
//     self-routing network, the Beneš and Waksman networks under global
//     looping routing, and a crossbar — all built through the one
//     constructor registry New(family, m, opts...) behind the common
//     Network interface, with a reusable conformance battery
//     (VerifyNetwork); superseded per-family constructors survive as
//     deprecated veneers (see deprecated.go for the policy);
//   - the serving stack behind one Router contract: the worker-pool
//     Engine (NewEngine), the self-healing multi-plane Supervised
//     (NewSupervised), and the multi-shard Cluster fabric (NewCluster,
//     WithShards) with live shard membership — each discovered onto the
//     optional BulkRouter/TracedRouter/PlanRouter surfaces via
//     AsBulkRouter/AsTracedRouter/AsPlanRouter, observed via the unified
//     Stats and Publish accessors, and served over HTTP/TCP by
//     cmd/bnbserve;
//   - hardware/delay cost reports in the paper's C_SW/C_FN/D_SW/D_FN units,
//     and the closed-form rows of the paper's Tables 1 and 2 (Table1,
//     Table2, HeadlineRatios);
//   - a cell-switch fabric simulator (NewFabric; FIFO input-queued or
//     virtual-output-queued with WithVOQ) with uniform, permutation and
//     hotspot traffic for system-level workloads;
//   - permutation workload generators (RandomPerm, GeneratePerm and the
//     structured families), and the Beneš bit-controlled self-routing
//     experiment behind the paper's introduction (BenesSelfRouting);
//   - ASCII regenerations of the paper's structural figures (FigGBN,
//     FigBSN, FigBNBProfile, FigSplitter, FigFunctionNode, FigBatcher) and
//     dynamic instances (FigRouteInstance, FigSplitterInstance);
//   - the extension studies: switch lower bound (LowerBoundComparison),
//     pipelined operation (PipelineBNB and friends), gate-level compilation
//     (GateLevelBSN), banyan blocking (OmegaStudy, BaselineStudy), and a
//     machine-readable report of the whole evaluation (FullReport).
package bnbnet

import (
	"fmt"
	"math/rand"

	"repro/internal/batcher"
	"repro/internal/benes"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/crossbar"
	"repro/internal/fabric"
	"repro/internal/koppelman"
	"repro/internal/perm"
	"repro/internal/render"
)

// Word is one network input: an m-bit destination address plus a data
// payload of up to 64 bits.
type Word = core.Word

// Perm is a permutation of {0,...,n-1}; p[i] is the destination of input i.
type Perm = perm.Perm

// Cost reports hardware complexity in the paper's Section 5 units. Fields
// that do not apply to a network are zero.
type Cost struct {
	// Switches counts 2x2 switches (C_SW units).
	Switches int
	// FunctionSlices counts one-bit function-logic slices (C_FN units):
	// arbiter nodes for BNB, comparator slices for Batcher, routing slices
	// for Koppelman.
	FunctionSlices int
	// AdderSlices counts log N-bit adder bit-slices (Koppelman's ranking
	// circuit only).
	AdderSlices int
	// Crosspoints counts crossbar crosspoints (crossbar only).
	Crosspoints int
}

// Total returns the scalar cost under unit prices for every component kind.
func (c Cost) Total() int {
	return c.Switches + c.FunctionSlices + c.AdderSlices + c.Crosspoints
}

// Delay reports the propagation critical path in the paper's units.
type Delay struct {
	// SwitchUnits counts 2x2-switch traversals (D_SW units).
	SwitchUnits int
	// FunctionUnits counts function-node traversals (D_FN units).
	FunctionUnits int
}

// Units returns the total delay with the given per-device delays.
func (d Delay) Units(dsw, dfn float64) float64 {
	return float64(d.SwitchUnits)*dsw + float64(d.FunctionUnits)*dfn
}

// Network is the common interface of every permutation network in this
// repository. Implementations are immutable and safe for concurrent use.
type Network interface {
	// Name identifies the network family ("bnb", "batcher", ...).
	Name() string
	// Inputs returns the port count N.
	Inputs() int
	// Route self-routes the words; the destination addresses must form a
	// permutation of {0,...,N-1}. Output j of the result carries the word
	// addressed to j.
	Route(words []Word) ([]Word, error)
	// RoutePerm routes a bare permutation, carrying each source index as
	// the payload.
	RoutePerm(p Perm) ([]Word, error)
	// Cost reports the hardware complexity of the constructed instance.
	Cost() Cost
	// Delay reports the critical-path delay of the constructed instance.
	Delay() Delay
}

// ---------------------------------------------------------------------------
// BNB
// ---------------------------------------------------------------------------

// BNB is the paper's self-routing permutation network with its full
// extended API: besides the Network interface it offers stage tracing,
// parallel simulation, and the circuit-switched compute-once/replay-many
// mode. A *BNB is immutable and safe for concurrent use.
type BNB struct{ n *core.Network }

var _ Network = (*BNB)(nil)

// NewBNB constructs the paper's BNB self-routing permutation network with
// N = 2^m inputs and w data bits per word (0 <= w <= 64). It is the concrete
// constructor behind New("bnb", m, WithDataBits(w)); use it directly when
// the extended *BNB API (tracing, parallel routing, Compile/Replay,
// RouteInto) is needed.
func NewBNB(m, w int) (*BNB, error) {
	n, err := core.New(m, w)
	if err != nil {
		return nil, err
	}
	return &BNB{n: n}, nil
}

// Name implements Network.
func (b *BNB) Name() string { return "bnb" }

// Inputs implements Network.
func (b *BNB) Inputs() int { return b.n.Inputs() }

// Route implements Network.
func (b *BNB) Route(words []Word) ([]Word, error) { return b.n.Route(words) }

// RoutePerm implements Network.
func (b *BNB) RoutePerm(p Perm) ([]Word, error) { return b.n.RoutePerm(p) }

// Cost implements Network.
func (b *BNB) Cost() Cost {
	h := b.n.CountHardware()
	return Cost{Switches: h.Switches, FunctionSlices: h.FunctionNodes}
}

// Delay implements Network.
func (b *BNB) Delay() Delay {
	d := b.n.MeasureDelay()
	return Delay{SwitchUnits: d.SwitchStages, FunctionUnits: d.FunctionNodeLevels}
}

// RouteTraced routes the words and additionally returns the word vector at
// the input of every main stage plus the final output (m+1 snapshots) — the
// MSB-first radix sort made visible.
func (b *BNB) RouteTraced(words []Word) ([]Word, [][]Word, error) {
	return b.n.RouteTraced(words)
}

// RouteParallel routes the words with the nested networks of each main
// stage evaluated concurrently; workers <= 0 selects GOMAXPROCS. Results
// are identical to Route.
func (b *BNB) RouteParallel(words []Word, workers int) ([]Word, error) {
	return b.n.RouteParallel(words, workers)
}

// RouteInto routes src into dst over the pooled hot path: after the routing
// scratch pool has warmed up, a RouteInto performs zero heap allocations.
// dst and src must both have length N; dst may be src itself but must not
// otherwise overlap it. Safe for concurrent use.
func (b *BNB) RouteInto(dst, src []Word) error { return b.n.RouteInto(dst, src) }

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

type batcherNetwork struct{ n *batcher.Network }

func newBatcherNetwork(m, w int) (Network, error) {
	n, err := batcher.New(m, w)
	if err != nil {
		return nil, err
	}
	return batcherNetwork{n: n}, nil
}

func (b batcherNetwork) Name() string { return "batcher" }

func (b batcherNetwork) Inputs() int { return b.n.Inputs() }

func (b batcherNetwork) Route(words []Word) ([]Word, error) {
	return routeConverted(words, b.n.Route)
}

func (b batcherNetwork) RoutePerm(p Perm) ([]Word, error) { return b.Route(permWords(p)) }

func (b batcherNetwork) Cost() Cost {
	h := b.n.CountHardware()
	return Cost{Switches: h.Switches, FunctionSlices: h.CompareSlices}
}

func (b batcherNetwork) Delay() Delay {
	d := b.n.MeasureDelay()
	return Delay{SwitchUnits: d.SwitchStages, FunctionUnits: d.FunctionNodeLevels}
}

// ---------------------------------------------------------------------------
// Koppelman analogue
// ---------------------------------------------------------------------------

type koppelmanNetwork struct{ n *koppelman.Network }

func newKoppelmanNetwork(m, w int) (Network, error) {
	n, err := koppelman.New(m, w)
	if err != nil {
		return nil, err
	}
	return koppelmanNetwork{n: n}, nil
}

func (k koppelmanNetwork) Name() string { return "koppelman" }

func (k koppelmanNetwork) Inputs() int { return k.n.Inputs() }

func (k koppelmanNetwork) Route(words []Word) ([]Word, error) {
	return routeConverted(words, k.n.Route)
}

func (k koppelmanNetwork) RoutePerm(p Perm) ([]Word, error) { return k.Route(permWords(p)) }

func (k koppelmanNetwork) Cost() Cost {
	h := k.n.CountHardware()
	return Cost{
		Switches:       h.Switches,
		FunctionSlices: h.FunctionSlices,
		AdderSlices:    h.AdderSlices,
	}
}

// Delay reports the data-path stages of the analogue; the full Table 2
// formula (which includes the ranking-tree traversals) is available via
// Table2.
func (k koppelmanNetwork) Delay() Delay {
	// The analogue's data path mirrors the naive-slice GBN: one switch
	// column per nested stage, plus two tree traversals of the ranking
	// circuit per block (up and down), analogous to the arbiter's 2l levels
	// but with log N-bit adders.
	m := 0
	for n := k.n.Inputs(); n > 1; n >>= 1 {
		m++
	}
	sw := m * (m + 1) / 2
	fn := 0
	for kk := 1; kk <= m; kk++ {
		fn += 2 * kk * m // ranking tree of depth kk, each node a log N-bit adder
	}
	return Delay{SwitchUnits: sw, FunctionUnits: fn}
}

// ---------------------------------------------------------------------------
// Beneš (global looping routing)
// ---------------------------------------------------------------------------

type benesNetwork struct{ n *benes.Network }

func newBenesNetwork(m int) (Network, error) {
	n, err := benes.New(m)
	if err != nil {
		return nil, err
	}
	return benesNetwork{n: n}, nil
}

func (b benesNetwork) Name() string { return "benes" }

func (b benesNetwork) Inputs() int { return b.n.Inputs() }

func (b benesNetwork) Route(words []Word) ([]Word, error) {
	return routeArranged("benes", b.n.Inputs(), words, func(p Perm) (Perm, error) {
		settings, err := b.n.RouteGlobal(p)
		if err != nil {
			return nil, err
		}
		return b.n.Apply(settings)
	})
}

func (b benesNetwork) RoutePerm(p Perm) ([]Word, error) { return b.Route(permWords(p)) }

func (b benesNetwork) Cost() Cost { return Cost{Switches: b.n.Switches()} }

func (b benesNetwork) Delay() Delay { return Delay{SwitchUnits: b.n.Stages()} }

// ---------------------------------------------------------------------------
// Crossbar
// ---------------------------------------------------------------------------

type crossbarNetwork struct{ n *crossbar.Network }

// NewCrossbar constructs an N x N crossbar. It remains the concrete
// constructor because N need not be a power of two; New("crossbar", m)
// covers the power-of-two case N = 2^m.
func NewCrossbar(n int) (Network, error) {
	c, err := crossbar.New(n)
	if err != nil {
		return nil, err
	}
	return crossbarNetwork{n: c}, nil
}

func newCrossbarNetwork(m int) (Network, error) {
	if m < 1 || m > 20 {
		return nil, fmt.Errorf("bnbnet: crossbar order m = %d out of range [1, 20]", m)
	}
	return NewCrossbar(1 << uint(m))
}

func (c crossbarNetwork) Name() string { return "crossbar" }

func (c crossbarNetwork) Inputs() int { return c.n.Inputs() }

func (c crossbarNetwork) Route(words []Word) ([]Word, error) {
	return routeConverted(words, c.n.Route)
}

func (c crossbarNetwork) RoutePerm(p Perm) ([]Word, error) { return c.Route(permWords(p)) }

func (c crossbarNetwork) Cost() Cost { return Cost{Crosspoints: c.n.Crosspoints()} }

func (c crossbarNetwork) Delay() Delay { return Delay{SwitchUnits: c.n.Delay()} }

// ---------------------------------------------------------------------------
// Fabric, workloads, tables, figures
// ---------------------------------------------------------------------------

// Traffic aliases the fabric traffic-generator interface.
type Traffic = fabric.Traffic

// UniformTraffic is Bernoulli-uniform traffic at the given per-port load.
type UniformTraffic = fabric.Uniform

// PermutationTraffic delivers a fresh random full permutation per cycle at
// the given batch probability.
type PermutationTraffic = fabric.Permutation

// HotspotTraffic overlays uniform traffic with a hot output.
type HotspotTraffic = fabric.Hotspot

// FabricStats aggregates a fabric simulation run.
type FabricStats = fabric.Stats

// FabricSwitch is a FIFO input-queued cell switch around a Network.
type FabricSwitch = fabric.Switch

// VOQFabricSwitch is a virtual-output-queued cell switch with an
// iSLIP-style matcher around a Network; it removes head-of-line blocking.
type VOQFabricSwitch = fabric.VOQSwitch

// Fabric is the common surface of the cell-switch simulators NewFabric
// builds: FIFO input-queued by default, virtual-output-queued with WithVOQ.
type Fabric interface {
	// Ports returns the port count N.
	Ports() int
	// QueueDepth returns input i's backlog (summed over VOQs when present).
	QueueDepth(i int) int
	// AttachMetrics observes every routed cycle into the sink.
	AttachMetrics(m *Metrics)
	// Run drives the switch for the given cycles of traffic.
	Run(t Traffic, cycles int, rng *rand.Rand) (FabricStats, error)
}

// NewFabric wraps a Network as the routing core of a cell-switch simulator.
// The default is the FIFO input-queued switch under the strict failure
// policy; WithVOQ selects the virtual-output-queued switch with the
// iSLIP-style matcher (removing head-of-line blocking), WithDegraded the
// FIFO switch's graceful requeue-on-failure policy (the mode a fabric over a
// faulty network runs in — it does not compose with WithVOQ), and
// WithMetrics attaches the observability sink. The concrete *FabricSwitch
// and *VOQFabricSwitch types remain reachable by type assertion.
func NewFabric(n Network, opts ...Option) (Fabric, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.anySet(^(optFabric | optMetrics)) {
		return nil, fmt.Errorf("bnbnet: NewFabric accepts only WithVOQ, WithDegraded and WithMetrics")
	}
	if o.voq && o.degraded {
		return nil, fmt.Errorf("bnbnet: WithDegraded is the FIFO switch's failure policy; it does not compose with WithVOQ")
	}
	r, err := fabricRouter(n)
	if err != nil {
		return nil, err
	}
	var f Fabric
	if o.voq {
		s, err := fabric.NewVOQSwitch(r)
		if err != nil {
			return nil, err
		}
		f = s
	} else {
		s, err := fabric.NewSwitch(r)
		if err != nil {
			return nil, err
		}
		s.SetDegraded(o.degraded)
		f = s
	}
	if o.metrics != nil {
		f.AttachMetrics(o.metrics)
	}
	return f, nil
}

func fabricRouter(n Network) (fabric.Router, error) {
	if n == nil {
		return nil, fmt.Errorf("bnbnet: nil network")
	}
	return fabric.RouterFunc{N: n.Inputs(), Fn: func(p Perm) (Perm, error) {
		out, err := n.RoutePerm(p)
		if err != nil {
			return nil, err
		}
		arrangement := make(Perm, len(out))
		for j, wd := range out {
			if wd.Addr < 0 {
				// A faulty network's dead link reads Addr = -1; report the
				// output as empty so a degraded switch requeues the cell.
				arrangement[j] = -1
				continue
			}
			arrangement[j] = int(wd.Data)
		}
		return arrangement, nil
	}}, nil
}

// RandomPerm draws a uniform random permutation of n elements from rng.
func RandomPerm(n int, rng *rand.Rand) Perm { return perm.Random(n, rng) }

// PermFamily names a structured permutation family.
type PermFamily = perm.Family

// Structured permutation families for workload sweeps.
const (
	FamilyIdentity       = perm.FamilyIdentity
	FamilyReversal       = perm.FamilyReversal
	FamilyBitReversal    = perm.FamilyBitReversal
	FamilyPerfectShuffle = perm.FamilyPerfectShuffle
	FamilyBitComplement  = perm.FamilyBitComplement
	FamilyTranspose      = perm.FamilyTranspose
	FamilyButterfly      = perm.FamilyButterfly
	FamilyRandom         = perm.FamilyRandom
)

// PermFamilies lists every built-in family.
func PermFamilies() []PermFamily { return perm.Families() }

// GeneratePerm produces a member of the family on 2^m elements; rng is used
// only by FamilyRandom.
func GeneratePerm(f PermFamily, m int, rng *rand.Rand) (Perm, error) {
	return perm.Generate(f, m, rng)
}

// Table1Row is one row of the paper's Table 1 evaluated at a concrete order.
type Table1Row = cost.Table1Row

// Table2Row is one row of the paper's Table 2 evaluated at a concrete order.
type Table2Row = cost.Table2Row

// Table1 evaluates the hardware-complexity leading terms of the paper's
// Table 1 at order m.
func Table1(m int) ([]Table1Row, error) { return cost.Table1(m) }

// Table2 evaluates the propagation-delay rows of the paper's Table 2 at
// order m.
func Table2(m int) ([]Table2Row, error) { return cost.Table2(m) }

// HeadlineRatios returns BNB/Batcher hardware and delay ratios from the
// exact formulas; they approach 1/3 and 2/3 as m grows (the abstract's
// claims).
func HeadlineRatios(m, w int) (hardware, delay float64, err error) {
	return cost.HeadlineRatios(m, w)
}

// BenesSelfRouting measures the intro's dichotomy on a Beneš network of
// order m: the success rate of bit-controlled destination-tag self-routing
// over `trials` uniform random permutations (well below 1), alongside
// confirmation that structured classes route (all shifts are tried; ok is
// false if any fails).
func BenesSelfRouting(m, trials int, rng *rand.Rand) (randomRate float64, shiftsOK bool, err error) {
	n, err := benes.New(m)
	if err != nil {
		return 0, false, err
	}
	d := benes.DefaultSelfRouting(m)
	rate, err := n.SelfRouteRate(d, trials, rng)
	if err != nil {
		return 0, false, err
	}
	shiftsOK = true
	for a := 0; a < n.Inputs(); a++ {
		ok, _, err := n.RouteSelf(perm.VectorShift(n.Inputs(), a), d)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			shiftsOK = false
			break
		}
	}
	return rate, shiftsOK, nil
}

// FigGBN renders the generalized baseline network of order m (Fig. 1 shape).
func FigGBN(m int) (string, error) { return render.GBN(m) }

// FigBSN renders the bit-sorter network of order k.
func FigBSN(k int) (string, error) { return render.BSNFigure(k) }

// FigBNBProfile renders the nested structure of a BNB network of order m
// with w data bits (Figs. 2-3 shape).
func FigBNBProfile(m, w int) (string, error) {
	n, err := core.New(m, w)
	if err != nil {
		return "", err
	}
	return render.BNBProfile(n), nil
}

// FigSplitter renders splitter sp(p) with its arbiter tree (Fig. 4 shape).
func FigSplitter(p int) (string, error) { return render.Splitter(p) }

// FigFunctionNode renders the arbiter function node and its generated truth
// table (Fig. 5 shape).
func FigFunctionNode() string { return render.FunctionNode() }
