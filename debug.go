package bnbnet

// This file exposes the debug serving surface: request tracing handles
// (Tracer/TraceSpan, attached with WithTracer), and an HTTP endpoint bundle
// — Prometheus-style metrics exposition, recent-span dumps, expvar, and
// net/http/pprof — served either standalone via Serve or owned by an engine
// through WithDebugAddr (DESIGN.md §11).

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/trace"
)

// Tracer is a bounded lock-free ring of per-request spans with slow-request
// exemplar capture. Attach one to NewEngine or NewSupervised with WithTracer;
// a nil *Tracer is valid everywhere and disables tracing at zero cost on the
// routing hot path. See DESIGN.md §11 for the overhead budget.
type Tracer = trace.Tracer

// TraceSpan is one request's recorded life: queue wait, service time,
// retries, plane attempts and failovers, shed/breaker decisions, outcome.
type TraceSpan = trace.Span

// TracerConfig tunes NewTracerConfig's ring capacity, slow threshold and
// exemplar bound.
type TracerConfig = trace.Config

// NewTracer returns a tracer keeping the most recent capacity spans
// (rounded up to a power of two; <= 0 selects 1024), with the default 1ms
// slow-exemplar threshold.
func NewTracer(capacity int) *Tracer { return trace.New(trace.Config{Capacity: capacity}) }

// NewTracerConfig is NewTracer with full control over the slow-request
// exemplar capture.
func NewTracerConfig(cfg TracerConfig) *Tracer { return trace.New(cfg) }

// DebugHandler bundles the debug endpoints into one http.Handler:
//
//	/debug/bnb/metrics  Prometheus text exposition of the metrics sink
//	/debug/bnb/traces   JSON dump of recent spans (?n= bounds the count,
//	                    ?slow=1 selects the slow-request exemplars instead)
//	/debug/vars         the process-wide expvar surface (Publish targets)
//	/debug/pprof/...    the standard net/http/pprof profiles
//
// Either argument may be nil: a nil Metrics renders an all-zero exposition,
// a nil Tracer an empty span list, and the pprof/expvar surfaces work
// regardless.
func DebugHandler(m *Metrics, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/bnb/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w, "bnb")
	})
	mux.HandleFunc("/debug/bnb/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 0 // whole ring
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad n=%q: want a non-negative integer", q), http.StatusBadRequest)
				return
			}
			n = v
		}
		var spans []TraceSpan
		if r.URL.Query().Get("slow") == "1" {
			spans = tr.Slowest()
			if n > 0 && n < len(spans) {
				spans = spans[:n]
			}
		} else {
			spans = tr.Snapshot(n)
		}
		if spans == nil {
			spans = []TraceSpan{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Capacity  int         `json:"capacity"`
			Started   uint64      `json:"started"`
			Published uint64      `json:"published"`
			Spans     []TraceSpan `json:"spans"`
		}{tr.Capacity(), tr.Started(), tr.Published(), spans})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP endpoint; construct with Serve (or
// implicitly with WithDebugAddr) and stop with Close.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts the DebugHandler bundle on addr (":0" picks a free port —
// read it back with Addr) and returns the running server. Either argument
// may be nil; see DebugHandler.
func Serve(addr string, m *Metrics, tr *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bnbnet: debug listen on %q: %w", addr, err)
	}
	d := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: DebugHandler(m, tr)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		// Serve returns http.ErrServerClosed on Close — a clean shutdown.
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the server's listen address, useful with ":0".
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and waits for its serving goroutine to exit, so a
// Close-then-leak-check sequence observes no straggler. Idempotent.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}
