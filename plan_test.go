package bnbnet

// Tests for the compiled-plan surface: the PlanRouter API and its discovery
// through decorators, the differential compile-replay battery (every sweep
// permutation routed live and by plan replay, word-for-word), the plan-cache
// wiring of NewEngine and NewSupervised, and the acceptance pins — Replay at
// zero allocations and below Batcher's live route at m=5.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/check"
)

// planReplayNet adapts a *BNB into a check.Network that routes every request
// by compile-then-replay instead of the live arbiter pass. Sweeping it
// against the live network proves the recorded plans reproduce the
// self-routing data path word-for-word on every battery permutation.
type planReplayNet struct{ b *BNB }

func (n planReplayNet) Name() string { return "bnb-replay" }
func (n planReplayNet) Inputs() int  { return n.b.Inputs() }

func (n planReplayNet) Route(words []Word) ([]Word, error) {
	p := make(Perm, len(words))
	for i, wd := range words {
		p[i] = wd.Addr
	}
	pl, err := n.b.Compile(p)
	if err != nil {
		return nil, err
	}
	out := make([]Word, len(words))
	if err := n.b.Replay(pl, out, words); err != nil {
		return nil, err
	}
	return out, nil
}

func (n planReplayNet) RoutePerm(p Perm) ([]Word, error) { return n.Route(permWords(p)) }

// TestPlanDifferentialSweep routes the full verification battery through the
// live self-routing network and through compile-replay, comparing
// word-for-word. At m=3 the sweep enumerates all 8! permutations, so the
// compile-replay equivalence is exhaustive for N <= 8 (the acceptance bar);
// m=4 adds the structured families, the full BPC class, and the adversarial
// climbs at the next size up.
func TestPlanDifferentialSweep(t *testing.T) {
	for _, m := range []int{3, 4} {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			b, err := NewBNB(m, 16)
			if err != nil {
				t.Fatal(err)
			}
			report, err := check.Sweep([]check.Network{b, planReplayNet{b: b}}, check.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m == 3 && !report.ExhaustiveDone {
				t.Error("N=8 sweep skipped the exhaustive enumeration")
			}
			if !report.OK() {
				t.Fatalf("live route and plan replay diverged (%d checks): %v", report.Checked, report.Failures)
			}
			t.Logf("m=%d: %d permutations agree live vs. replay", m, report.Checked)
		})
	}
}

// TestPlanRouterSurface covers the public surface: discovery through New's
// decorators, the compile-replay round trip, the plan accessors, and the
// deprecated Circuit veneer delegating to the same plans.
func TestPlanRouterSurface(t *testing.T) {
	b, err := NewBNB(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	n := b.Inputs()
	if _, ok := AsPlanRouter(b); !ok {
		t.Fatal("bare *BNB does not offer PlanRouter")
	}
	dec := mustNetwork(t, "bnb", 4, WithMetrics(NewMetrics()))
	pr, ok := AsPlanRouter(dec)
	if !ok {
		t.Fatal("AsPlanRouter does not see through New's metrics decorator")
	}
	if _, ok := AsPlanRouter(mustNetwork(t, "batcher", 4)); ok {
		t.Error("batcher offers PlanRouter; compiled plans are a BNB surface")
	}

	rng := rand.New(rand.NewSource(7))
	p := RandomPerm(n, rng)
	pl, err := pr.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.M() != 4 || pl.Inputs() != n {
		t.Errorf("plan reports m=%d N=%d, want 4, %d", pl.M(), pl.Inputs(), n)
	}
	want := (n / 2) * 4 * 5 / 2
	if pl.Switches() != want {
		t.Errorf("Switches() = %d, want %d", pl.Switches(), want)
	}
	got := pl.Perm()
	for i := range p {
		if got[i] != p[i] {
			t.Fatalf("Perm()[%d] = %d, want %d", i, got[i], p[i])
		}
	}
	got[0] = -1 // Perm returns a copy; mutating it must not corrupt the plan.

	src := make([]Word, n)
	for i, d := range p {
		src[i] = Word{Addr: d, Data: uint64(100 + i)}
	}
	dst := make([]Word, n)
	if err := pr.Replay(pl, dst, src); err != nil {
		t.Fatal(err)
	}
	for j, wd := range dst {
		if wd.Addr != j {
			t.Fatalf("output %d carries address %d", j, wd.Addr)
		}
	}
	for i, d := range p {
		if dst[d].Data != uint64(100+i) {
			t.Fatalf("payload of input %d lost", i)
		}
	}

	// Error contract: nil plan, mismatched batch, wrong sizes, foreign order.
	if err := b.Replay(nil, dst, src); err == nil {
		t.Error("nil plan accepted")
	}
	other := make([]Word, n)
	copy(other, src)
	other[0], other[1] = other[1], other[0]
	if err := b.Replay(pl, dst, other); !errors.Is(err, ErrPlanMismatch) {
		t.Errorf("mismatched batch = %v, want ErrPlanMismatch", err)
	}
	if err := b.Replay(pl, dst, src[:n-1]); !errors.Is(err, ErrBadSize) {
		t.Errorf("short src = %v, want ErrBadSize", err)
	}
	b3, err := NewBNB(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	pl3, err := b3.Compile(RandomPerm(8, rng))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Replay(pl3, dst, src); !errors.Is(err, ErrPlanMismatch) {
		t.Errorf("foreign-order plan = %v, want ErrPlanMismatch", err)
	}
	if _, err := b.Compile(Perm{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}); !errors.Is(err, ErrNotPermutation) {
		t.Errorf("Compile of a non-permutation = %v, want ErrNotPermutation", err)
	}

	// The deprecated Circuit is a veneer over the same plans.
	c, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Switches() != pl.Switches() {
		t.Errorf("Circuit.Switches() = %d, want %d", c.Switches(), pl.Switches())
	}
	if c.Plan() == nil {
		t.Error("Circuit.Plan() = nil")
	}
	payload := make([]Word, n)
	for i := range payload {
		payload[i] = Word{Addr: 0, Data: uint64(7000 + i)} // addresses ignored
	}
	out, err := c.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range p {
		if out[d].Data != uint64(7000+i) {
			t.Fatalf("Circuit.Send: payload of input %d lost", i)
		}
	}
}

// TestWithPlanCacheEngine verifies the engine-level cache wiring: repeated
// permutations hit, the counters land in both PlanCacheStats and the shared
// Metrics sink, expvar publication works once, and the option is rejected
// where it cannot apply.
func TestWithPlanCacheEngine(t *testing.T) {
	ms := NewMetrics()
	e, err := NewEngine(mustNetwork(t, "bnb", 3), WithPlanCache(8), WithMetrics(ms))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	ps := []Perm{RandomPerm(8, rng), RandomPerm(8, rng)}
	for round := 0; round < 3; round++ {
		for _, p := range ps {
			out, errs := e.RoutePermBatch([]Perm{p})
			if errs[0] != nil {
				t.Fatal(errs[0])
			}
			for j, wd := range out[0] {
				if wd.Addr != j {
					t.Fatalf("output %d carries address %d", j, wd.Addr)
				}
			}
		}
	}
	st := e.PlanCacheStats()
	if st.Misses != 2 || st.Hits != 4 {
		t.Errorf("cache stats = %+v, want 2 misses and 4 hits", st)
	}
	if st.Entries != 2 || st.Capacity != 8 {
		t.Errorf("cache stats = %+v, want 2 entries of capacity 8", st)
	}
	if r := st.HitRatio(); r < 0.66 || r > 0.67 {
		t.Errorf("HitRatio() = %.3f, want 2/3", r)
	}
	snap := ms.Snapshot()
	if snap.PlanHits != 4 || snap.PlanMisses != 2 || snap.PlanCompiles != 2 {
		t.Errorf("metrics = hits %d misses %d compiles %d, want 4/2/2",
			snap.PlanHits, snap.PlanMisses, snap.PlanCompiles)
	}
	if snap.PlanCompiles > 0 && snap.MeanPlanCompile <= 0 {
		t.Error("MeanPlanCompile not recorded")
	}
	if err := e.PublishPlanCache("test_engine_plan_cache"); err != nil {
		t.Fatal(err)
	}
	if err := e.PublishPlanCache("test_engine_plan_cache"); err == nil {
		t.Error("duplicate expvar name accepted")
	}

	// A cached engine still refuses malformed requests with the usual
	// sentinels.
	if _, errs := e.RouteBatch([][]Word{permWords(Perm{0, 0, 2, 3, 4, 5, 6, 7})}); !errors.Is(errs[0], ErrNotPermutation) {
		t.Errorf("non-permutation through cached engine = %v, want ErrNotPermutation", errs[0])
	}

	// Rejections: no compiled-plan surface, wrong constructor, negative size.
	if _, err := NewEngine(mustNetwork(t, "batcher", 3), WithPlanCache(8)); err == nil ||
		!strings.Contains(err.Error(), "compiled-plan surface") {
		t.Errorf("WithPlanCache on batcher = %v, want compiled-plan surface error", err)
	}
	if _, err := New("bnb", 3, WithPlanCache(8)); err == nil {
		t.Error("WithPlanCache accepted by New")
	}
	if _, err := NewEngine(mustNetwork(t, "bnb", 3), WithPlanCache(-1)); err == nil {
		t.Error("negative WithPlanCache accepted")
	}
	// Engine without the option reports zero stats and refuses to publish.
	plain, err := NewEngine(mustNetwork(t, "bnb", 3))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if st := plain.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Errorf("uncached engine stats = %+v, want zero", st)
	}
	if err := plain.PublishPlanCache("test_engine_plan_cache_none"); err == nil {
		t.Error("PublishPlanCache without a cache succeeded")
	}
}

// TestWithPlanCacheSupervised verifies the per-plane wiring: caching is on
// by default for plan-capable planes, repeats hit, WithPlanCache(0) opts
// out, and faulted planes stay uncached.
func TestWithPlanCacheSupervised(t *testing.T) {
	ms := NewMetrics()
	s, err := NewSupervised("bnb", 3, WithPlanes(2), WithMetrics(ms))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	p := RandomPerm(8, rng)
	for i := 0; i < 6; i++ {
		outs, errs := s.RoutePermBatch([]Perm{p})
		if errs[0] != nil {
			t.Fatal(errs[0])
		}
		for j, wd := range outs[0] {
			if wd.Addr != j {
				t.Fatalf("output %d carries address %d", j, wd.Addr)
			}
		}
	}
	stats := s.PlanCacheStats()
	if len(stats) != 2 {
		t.Fatalf("PlanCacheStats() has %d planes, want 2", len(stats))
	}
	var hits, misses int64
	for _, st := range stats {
		hits += st.Hits
		misses += st.Misses
		if st.Capacity != defaultPlanCacheEntries {
			t.Errorf("default plane cache capacity = %d, want %d", st.Capacity, defaultPlanCacheEntries)
		}
	}
	if hits+misses != 6 {
		t.Errorf("plane caches saw %d lookups, want 6", hits+misses)
	}
	// Each plane compiles the permutation at most once; everything else hits.
	if misses > 2 || hits < 4 {
		t.Errorf("plane caches: %d misses, %d hits; want <=2 misses over 6 routes", misses, hits)
	}
	if snap := ms.Snapshot(); snap.PlanHits != hits || snap.PlanMisses != misses {
		t.Errorf("metrics (hits %d, misses %d) disagree with cache stats (%d, %d)",
			snap.PlanHits, snap.PlanMisses, hits, misses)
	}
	if err := s.PublishPlanCache("test_supervised_plan_cache"); err != nil {
		t.Fatal(err)
	}

	// WithPlanCache(0) opts out entirely.
	off, err := NewSupervised("bnb", 3, WithPlanes(2), WithPlanCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if got := off.PlanCacheStats(); got != nil {
		t.Errorf("opted-out supervised PlanCacheStats() = %v, want nil", got)
	}
	if err := off.PublishPlanCache("test_supervised_plan_cache_off"); err == nil {
		t.Error("PublishPlanCache without caches succeeded")
	}

	// An explicit cache on a family without the surface is an error ...
	if _, err := NewSupervised("batcher", 3, WithPlanes(2), WithPlanCache(8)); err == nil ||
		!strings.Contains(err.Error(), "compiled-plan surface") {
		t.Errorf("WithPlanCache on supervised batcher = %v, want compiled-plan surface error", err)
	}
	// ... while the silent default simply leaves such planes uncached.
	bs, err := NewSupervised("batcher", 3, WithPlanes(2))
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	if st := bs.PlanCacheStats(); len(st) != 2 || st[0] != (PlanCacheStats{}) {
		t.Errorf("batcher plane stats = %v, want zero stats per plane", st)
	}

	// A faulted plane stays uncached: plans must never be compiled on, or
	// replayed over, a plane with injected faults.
	fs, err := NewSupervised("bnb", 3, WithPlanes(2),
		WithPlaneFaults(0, &FaultPlan{ChaosRate: 0.01, ChaosHeal: 1, Seed: 2026}))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for i := 0; i < 4; i++ {
		if _, errs := fs.RoutePermBatch([]Perm{p}); errs[0] != nil {
			t.Fatal(errs[0])
		}
	}
	fstats := fs.PlanCacheStats()
	if len(fstats) != 2 {
		t.Fatalf("PlanCacheStats() has %d planes, want 2", len(fstats))
	}
	if fstats[0] != (PlanCacheStats{}) {
		t.Errorf("faulted plane 0 has cache stats %+v, want zero (uncached)", fstats[0])
	}
	if fstats[1].Misses == 0 {
		t.Errorf("healthy plane 1 stats = %+v, want at least one compile", fstats[1])
	}
}

// TestReplayBelowBatcher is the acceptance benchmark: replaying a cached
// plan at m=5 must undercut Batcher's live sorting route — the point of
// compiling is to beat the fastest live router, not just our own arbiter
// pass. Run via testing.Benchmark so the comparison is measured, not
// assumed.
func TestReplayBelowBatcher(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts ns/op; run without -race")
	}
	const m = 5
	b, err := NewBNB(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	n := b.Inputs()
	rng := rand.New(rand.NewSource(1991))
	p := RandomPerm(n, rng)
	pl, err := b.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	src := permWords(p)
	dst := make([]Word, n)
	replay := testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			if err := b.Replay(pl, dst, src); err != nil {
				bb.Fatal(err)
			}
		}
	})

	bat := mustNetwork(t, "batcher", m)
	bsrc := permWords(p)
	batcher := testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			if _, err := bat.Route(bsrc); err != nil {
				bb.Fatal(err)
			}
		}
	})

	rNs := float64(replay.T.Nanoseconds()) / float64(replay.N)
	bNs := float64(batcher.T.Nanoseconds()) / float64(batcher.N)
	t.Logf("m=%d: plan replay %.0f ns/op vs batcher live route %.0f ns/op", m, rNs, bNs)
	if rNs >= bNs {
		t.Errorf("plan replay (%.0f ns/op) is not below batcher's live route (%.0f ns/op)", rNs, bNs)
	}
	for j, wd := range dst {
		if wd.Addr != j {
			t.Fatalf("output %d carries address %d", j, wd.Addr)
		}
	}
}
