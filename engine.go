package bnbnet

// This file exposes the serving layer: a bounded worker-pool Engine that
// turns any Network into a concurrent, instrumented routing service, plus
// the Metrics sink that New, NewEngine and the fabric switches share.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// Metrics is a lock-free observability sink: atomic counters of routes,
// errors and words switched, plus a latency histogram with percentile
// snapshots. One sink may be shared by any number of networks, engines and
// fabric switches; Snapshot may be called concurrently with observation.
type Metrics = metrics.Metrics

// MetricsSnapshot is one consistent-enough view of a Metrics sink.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics returns a fresh metrics sink ready to attach with WithMetrics
// or FabricSwitch.AttachMetrics.
func NewMetrics() *Metrics { return new(Metrics) }

// BulkRouter is the optional pooled routing surface of a Network: RouteInto
// routes src into dst in place, with zero steady-state allocation for
// networks implementing it natively (*BNB). NewEngine and the supervised
// planes serve BulkRouter networks over this hot path; everything else goes
// through a route-and-copy adapter. Discover the surface with AsBulkRouter,
// which sees through New's decorators.
type BulkRouter interface {
	// RouteInto routes src into dst; both must have length Inputs().
	RouteInto(dst, src []Word) error
}

// TracedRouter is the optional stage-tracing surface of a Network:
// RouteTraced routes the words and additionally returns the word vector at
// the input of every main stage plus the final output. *BNB implements it
// natively; New's WithTrace option requires it. Discover the surface with
// AsTracedRouter.
type TracedRouter interface {
	RouteTraced(words []Word) ([]Word, [][]Word, error)
}

// asSurface walks n's decorator chain (interface{ Unwrap() Network }) until
// one link implements the optional surface T.
func asSurface[T any](n Network) (T, bool) {
	for base := n; base != nil; {
		if s, ok := base.(T); ok {
			return s, true
		}
		u, ok := base.(interface{ Unwrap() Network })
		if !ok {
			break
		}
		base = u.Unwrap()
	}
	var zero T
	return zero, false
}

// AsBulkRouter returns the pooled routing surface of n, or ok = false when
// neither the network nor anything under its decorators offers one.
func AsBulkRouter(n Network) (BulkRouter, bool) { return asSurface[BulkRouter](n) }

// AsTracedRouter returns the stage-tracing surface of n, or ok = false when
// neither the network nor anything under its decorators offers one.
func AsTracedRouter(n Network) (TracedRouter, bool) { return asSurface[TracedRouter](n) }

// Ticket is the handle to one request submitted to an Engine; Wait blocks
// for completion and returns the output buffer and the request's error.
type Ticket = engine.Ticket

// Class is a request's QoS admission class for SubmitClass: under pressure
// the engine sheds Background first, Standard next and Critical last, while
// workers serve the classes in the opposite order.
type Class = engine.Class

// The admission classes, lowest priority first. Submit and SubmitCtx use
// ClassStandard.
const (
	// ClassBackground is best-effort: it never blocks the submitter — a full
	// queue sheds it immediately with ErrOverloaded.
	ClassBackground = engine.Background
	// ClassStandard is the default class.
	ClassStandard = engine.Standard
	// ClassCritical is served ahead of everything else and only shed when
	// its own class cannot meet a deadline.
	ClassCritical = engine.Critical
)

// Engine is a bounded worker pool serving permutation routes over a Network:
// Submit enqueues one request (blocking only when the queue is full),
// RouteBatch fans a batch across the workers and reports per-request errors.
// Construct with NewEngine; all methods are safe for concurrent use.
type Engine struct {
	e   *engine.Engine
	dbg *DebugServer      // nil unless WithDebugAddr was set
	pc  *cachedPlanRouter // nil unless WithPlanCache was set
}

// NewEngine builds a serving engine around the network. Options: WithWorkers
// sets the pool size (default 4), WithQueue the per-class queued-request
// bound (default 4x workers), WithBatch the per-wakeup dequeue cap (default
// 8), WithMetrics the observability sink. The resilience options —
// WithTimeout, WithRetry, WithBreaker, WithFallback — bound each request's
// life, retry transient faults, and fail over to a standby network after
// consecutive hard failures (see DESIGN.md §8); WithShedding rejects
// requests whose deadline cannot be met at the current queue depth with
// ErrOverloaded instead of letting them expire in the queue (§9). WithTracer
// records one TraceSpan per request and WithDebugAddr starts the debug HTTP
// bundle, owned by this engine and stopped by Close (§11). Networks implementing
// BulkRouter — *BNB, including behind New's decorator — are served over the
// pooled zero-allocation hot path.
func NewEngine(n Network, opts ...Option) (*Engine, error) {
	if n == nil {
		return nil, fmt.Errorf("bnbnet: nil network")
	}
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.anySet(optDataBits) {
		return nil, fmt.Errorf("bnbnet: WithDataBits applies to New, not NewEngine")
	}
	if o.anySet(optTrace) {
		return nil, fmt.Errorf("bnbnet: WithTrace applies to New, not NewEngine")
	}
	if o.anySet(optFaults) {
		return nil, fmt.Errorf("bnbnet: WithFaults applies to New; pass the faulty network to NewEngine instead")
	}
	if o.anySet(optSupervised) {
		return nil, fmt.Errorf("bnbnet: WithPlanes, WithPlaneFaults, WithPlaneCap, WithHealthInterval and WithHedge apply to NewSupervised, not NewEngine")
	}
	if o.anySet(optFabric) {
		return nil, fmt.Errorf("bnbnet: WithVOQ and WithDegraded apply to NewFabric, not NewEngine")
	}
	if o.anySet(optShards) {
		return nil, fmt.Errorf("bnbnet: WithShards applies to NewCluster, not NewEngine")
	}
	if o.anySet(optFallback) && !o.anySet(optBreaker) {
		return nil, fmt.Errorf("bnbnet: WithFallback requires WithBreaker; without a breaker the fallback would never serve")
	}
	var fb engine.Router
	if o.fallback != nil {
		fb = engineRouter(o.fallback)
	}
	primary := engineRouter(n)
	var pc *cachedPlanRouter
	if o.planCache > 0 {
		cached, ok := newCachedPlanRouter(n, o.planCache, o.metrics)
		if !ok {
			return nil, fmt.Errorf("bnbnet: WithPlanCache requires a network with the compiled-plan surface (family %q offers none; see AsPlanRouter)", n.Name())
		}
		primary = cached
		pc = cached
	}
	e, err := engine.New(primary, engine.Config{
		Workers:          o.workers,
		Queue:            o.queue,
		Batch:            o.batch,
		Metrics:          o.metrics,
		Timeout:          o.timeout,
		Retry:            engine.RetryPolicy{MaxAttempts: o.retryAttempts, Backoff: o.retryBackoff},
		FailureThreshold: o.breaker,
		Fallback:         fb,
		Shed:             o.shed,
		Tracer:           o.tracer,
	})
	if err != nil {
		return nil, err
	}
	var dbg *DebugServer
	if o.debugAddr != "" {
		if dbg, err = Serve(o.debugAddr, o.metrics, o.tracer); err != nil {
			e.Close()
			return nil, err
		}
	}
	return &Engine{e: e, dbg: dbg, pc: pc}, nil
}

// engineRouter picks the fastest routing surface the network offers: its
// own RouteInto if it (or anything under its decorators) implements
// BulkRouter, else Route plus a copy.
func engineRouter(n Network) engine.Router {
	if br, ok := AsBulkRouter(n); ok {
		return bulkRouter{n: n, br: br}
	}
	return copyRouter{n: n}
}

type bulkRouter struct {
	n  Network
	br BulkRouter
}

func (r bulkRouter) Inputs() int { return r.n.Inputs() }

func (r bulkRouter) RouteInto(dst, src []core.Word) error { return r.br.RouteInto(dst, src) }

type copyRouter struct{ n Network }

func (r copyRouter) Inputs() int { return r.n.Inputs() }

func (r copyRouter) RouteInto(dst, src []core.Word) error {
	out, err := r.n.Route(src)
	if err != nil {
		return err
	}
	copy(dst, out)
	return nil
}

// Submit enqueues one routing request and returns its Ticket; the route
// lands in dst (engine-allocated when dst is nil). Submit blocks while the
// queue is full — that is the backpressure — and fails with ErrClosed after
// Close or ErrBadSize on a length mismatch. The caller must not touch src or
// dst until Wait returns.
func (e *Engine) Submit(dst, src []Word) (*Ticket, error) { return e.e.Submit(dst, src) }

// SubmitCtx is Submit with a context: a request whose context is cancelled
// or past its deadline before (or between) routing attempts completes with
// the context's error instead of being routed. WithTimeout, when set,
// applies on top of ctx.
func (e *Engine) SubmitCtx(ctx context.Context, dst, src []Word) (*Ticket, error) {
	return e.e.SubmitCtx(ctx, dst, src)
}

// SubmitClass is SubmitCtx with an explicit QoS admission class; see the
// Class constants for the shedding and serving order.
func (e *Engine) SubmitClass(ctx context.Context, class Class, dst, src []Word) (*Ticket, error) {
	return e.e.SubmitClass(ctx, class, dst, src)
}

// RouteBatch routes the batch across the worker pool and reports per-request
// results: outs[i] is the routed output of batch[i] (nil on failure) and
// errs[i] its error. It blocks until the whole batch has been served.
func (e *Engine) RouteBatch(batch [][]Word) (outs [][]Word, errs []error) {
	return e.e.RouteBatch(batch)
}

// RouteBatchCtx is RouteBatch with a context shared by every request of the
// batch. Cancellation splits the batch by completion: requests routed
// before the cancellation was observed keep their results, while requests
// still pending complete with the context's error — ErrTimeout-wrapped for
// an expired deadline, the bare context error for a cancel. Every errs[i]
// is either nil with a fully routed outs[i] or non-nil with outs[i] nil;
// there are no half-routed results.
func (e *Engine) RouteBatchCtx(ctx context.Context, batch [][]Word) (outs [][]Word, errs []error) {
	return e.e.RouteBatchCtx(ctx, batch)
}

// RoutePermBatch routes a batch of bare permutations, carrying each source
// index as the payload (the RoutePerm convention), and reports per-request
// results like RouteBatch.
func (e *Engine) RoutePermBatch(ps []Perm) (outs [][]Word, errs []error) {
	batch := make([][]Word, len(ps))
	for i, p := range ps {
		batch[i] = permWords(p)
	}
	return e.e.RouteBatch(batch)
}

// Workers returns the number of routing goroutines.
func (e *Engine) Workers() int { return e.e.Workers() }

// Inputs returns the port count of the served network.
func (e *Engine) Inputs() int { return e.e.Inputs() }

// Metrics returns the attached sink, or nil if none was configured.
func (e *Engine) Metrics() *Metrics { return e.e.Metrics() }

// BreakerOpen reports whether the circuit breaker (WithBreaker) is open.
func (e *Engine) BreakerOpen() bool { return e.e.BreakerOpen() }

// Tracer returns the span recorder, or nil without WithTracer.
func (e *Engine) Tracer() *Tracer { return e.e.Tracer() }

// DebugAddr returns the debug HTTP endpoint's listen address, or "" without
// WithDebugAddr.
func (e *Engine) DebugAddr() string {
	if e.dbg == nil {
		return ""
	}
	return e.dbg.Addr()
}

// InFlight returns the number of admitted requests not yet completed.
func (e *Engine) InFlight() int64 { return e.e.InFlight() }

// Drain gracefully stops admission and waits for every in-flight ticket to
// complete: new Submits fail fast with ErrDraining, queued requests are
// served normally, and Drain returns once the workers are idle. If ctx
// expires first, pending retry backoffs are cut short so parked requests
// settle immediately with their errors, and Drain reports the context's
// error. The WithDebugAddr server keeps serving through the drain — an
// operator watching /debug/bnb/metrics sees the drain happen — and is shut
// down only by Close, which after a completed Drain is an idempotent no-op.
func (e *Engine) Drain(ctx context.Context) error { return e.e.Drain(ctx) }

// Close stops accepting requests, drains queued work, and stops the workers;
// every ticket submitted before Close still completes. Pending trace spans
// are flushed into the ring and the WithDebugAddr server, if any, is shut
// down with no goroutine left behind — strictly after the drain completes,
// so the debug surface stays live while tickets settle. After a completed
// Drain, Close is an idempotent no-op returning nil; without one, a second
// Close reports ErrClosed.
func (e *Engine) Close() error {
	err := e.e.Close()
	if e.dbg != nil {
		e.dbg.Close()
	}
	return err
}
