package bnbnet

import (
	"math/rand"
	"testing"
)

// TestOptionalSurfaces pins the public optional-interface contract: the
// pooled and stage-tracing surfaces are discovered by type assertion, and
// AsBulkRouter/AsTracedRouter see them through New's decorators.
func TestOptionalSurfaces(t *testing.T) {
	const m = 3
	n, err := New("bnb", m, WithMetrics(NewMetrics())) // decorated
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(BulkRouter); ok {
		t.Fatal("decorator itself should not expose RouteInto; discovery goes through AsBulkRouter")
	}
	br, ok := AsBulkRouter(n)
	if !ok {
		t.Fatal("AsBulkRouter did not find *BNB under the decorator")
	}
	rng := rand.New(rand.NewSource(1))
	p := RandomPerm(n.Inputs(), rng)
	dst := make([]Word, n.Inputs())
	if err := br.RouteInto(dst, permWords(p)); err != nil {
		t.Fatal(err)
	}
	for j, wd := range dst {
		if wd.Addr != j {
			t.Fatalf("output %d carries address %d", j, wd.Addr)
		}
	}

	tr, ok := AsTracedRouter(n)
	if !ok {
		t.Fatal("AsTracedRouter did not find *BNB under the decorator")
	}
	out, snaps, err := tr.RouteTraced(permWords(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n.Inputs() || len(snaps) != m+1 {
		t.Fatalf("RouteTraced: %d outputs, %d snapshots, want %d and %d",
			len(out), len(snaps), n.Inputs(), m+1)
	}

	// Families without the surfaces are reported as such.
	b, err := New("batcher", m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := AsBulkRouter(b); ok {
		t.Error("batcher unexpectedly offers a pooled surface")
	}
	if _, ok := AsTracedRouter(b); ok {
		t.Error("batcher unexpectedly offers stage tracing")
	}
}

// TestAdapterConformance routes one random permutation through every family
// wrapper and checks the shared adapters deliver and validate: a wrong-size
// batch errors, a correct one lands every address on its output.
func TestAdapterConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, family := range Families() {
		n, err := New(family, 3)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		p := RandomPerm(n.Inputs(), rng)
		out, err := n.RoutePerm(p)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		for j, wd := range out {
			if wd.Addr != j {
				t.Errorf("%s: output %d carries address %d", family, j, wd.Addr)
			}
		}
		if _, err := n.Route(permWords(p)[:n.Inputs()-1]); err == nil {
			t.Errorf("%s: short batch routed without error", family)
		}
	}
}
