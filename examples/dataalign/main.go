// Data alignment: serve the access-and-alignment patterns of an array
// processor (Lawrie 1975, reference [2] of the paper) with a BNB network
// between N processors and N memory banks.
//
// A 2^k x 2^k matrix is stored across N = 2^m banks (m = 2k) so that entry
// (r, c) lives in bank r*2^k + c. Common parallel access patterns — rows,
// columns, diagonals, transposes, shuffles — are permutations from
// processor indices to bank indices; the network aligns each pattern in a
// single conflict-free pass, with no route precomputation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	bnbnet "repro"
)

func main() {
	const m = 6 // 64 processors / banks: an 8x8 matrix
	net, err := bnbnet.NewBNB(m, 16)
	if err != nil {
		log.Fatal(err)
	}
	n := net.Inputs()
	k := m / 2
	side := 1 << uint(k)
	fmt.Printf("%dx%d matrix across %d banks, BNB alignment network\n\n", side, side, n)

	// The memory image: bank b holds matrix entry (b / side, b % side).
	bankValue := func(b int) uint64 { return uint64(1000*(b/side) + b%side) }

	patterns := []struct {
		name string
		gen  func() (bnbnet.Perm, error)
		desc string
	}{
		{
			name: "transpose",
			gen: func() (bnbnet.Perm, error) {
				return bnbnet.GeneratePerm(bnbnet.FamilyTranspose, m, nil)
			},
			desc: "processor (r,c) fetches entry (c,r)",
		},
		{
			name: "perfect shuffle",
			gen: func() (bnbnet.Perm, error) {
				return bnbnet.GeneratePerm(bnbnet.FamilyPerfectShuffle, m, nil)
			},
			desc: "FFT butterfly realignment",
		},
		{
			name: "bit reversal",
			gen: func() (bnbnet.Perm, error) {
				return bnbnet.GeneratePerm(bnbnet.FamilyBitReversal, m, nil)
			},
			desc: "FFT output reordering",
		},
		{
			name: "diagonal shift",
			gen: func() (bnbnet.Perm, error) {
				p := make(bnbnet.Perm, n)
				for i := range p {
					r, c := i/side, i%side
					p[i] = r*side + (c+r)%side // skewed storage access
				}
				return p, nil
			},
			desc: "skewed diagonal access (conflict-free column reads)",
		},
		{
			name: "random gather",
			gen: func() (bnbnet.Perm, error) {
				return bnbnet.RandomPerm(n, rand.New(rand.NewSource(3))), nil
			},
			desc: "irregular but conflict-free gather",
		},
	}

	for _, pat := range patterns {
		p, err := pat.gen()
		if err != nil {
			log.Fatal(err)
		}
		// Processor i wants the content of bank p[i]. Model the aligned
		// *read* as routing each bank's word to the requesting processor:
		// bank b sends its value to processor q[b] where q is the inverse
		// pattern — self-routing needs only the address in the word header.
		q := p.Inverse()
		words := make([]bnbnet.Word, n)
		for b := 0; b < n; b++ {
			words[b] = bnbnet.Word{Addr: q[b], Data: bankValue(b)}
		}
		out, err := net.Route(words)
		if err != nil {
			log.Fatalf("%s: %v", pat.name, err)
		}
		for i := 0; i < n; i++ {
			if out[i].Data != bankValue(p[i]) {
				log.Fatalf("%s: processor %d received %d, wanted bank %d",
					pat.name, i, out[i].Data, p[i])
			}
		}
		fmt.Printf("  %-16s aligned in one pass ✓  (%s)\n", pat.name, pat.desc)
	}

	fmt.Println("\nfirst row of the transposed matrix as seen by processors 0..7:")
	p, err := bnbnet.GeneratePerm(bnbnet.FamilyTranspose, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	q := p.Inverse()
	words := make([]bnbnet.Word, n)
	for b := 0; b < n; b++ {
		words[b] = bnbnet.Word{Addr: q[b], Data: bankValue(b)}
	}
	out, err := net.Route(words)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < side; i++ {
		fmt.Printf("  processor %d reads %04d (entry (%d,%d))\n",
			i, out[i].Data, out[i].Data/1000, out[i].Data%1000)
	}
}
