// Engineserve: turn a BNB network into a concurrent routing service. A
// bounded worker-pool engine serves permutation requests from many producer
// goroutines over the pooled zero-allocation hot path, with backpressure
// when the queue fills and a shared metrics sink that a monitor goroutine
// snapshots live — the serving throughput counterpart of the paper's
// switching-fabric positioning.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	bnbnet "repro"
)

func main() {
	debugAddr := flag.String("debug", "", `serve the debug bundle (metrics exposition, trace dump, pprof) on this address, e.g. ":8080"`)
	flag.Parse()
	const (
		m         = 8 // N = 256 ports
		producers = 6
		requests  = 200 // per producer
	)
	// One call to the constructor registry builds the network; the same
	// options vocabulary then configures the engine around it.
	net, err := bnbnet.New("bnb", m, bnbnet.WithDataBits(16))
	if err != nil {
		log.Fatal(err)
	}
	sink := bnbnet.NewMetrics()
	opts := []bnbnet.Option{
		bnbnet.WithWorkers(4),
		bnbnet.WithQueue(16),
		bnbnet.WithMetrics(sink),
	}
	var tracer *bnbnet.Tracer
	if *debugAddr != "" {
		// The tracer records every request's span; the debug server exposes
		// the ring on /debug/bnb/traces next to the Prometheus exposition
		// and pprof, and dies with the engine's Close.
		tracer = bnbnet.NewTracer(1024)
		opts = append(opts, bnbnet.WithTracer(tracer), bnbnet.WithDebugAddr(*debugAddr))
	}
	eng, err := bnbnet.NewEngine(net, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d ports, %d workers\n", eng.Inputs(), eng.Workers())
	if addr := eng.DebugAddr(); addr != "" {
		fmt.Printf("debug: http://%s/debug/bnb/metrics (also /debug/bnb/traces, /debug/pprof/)\n", addr)
	}

	// A monitor goroutine watches the sink while the producers hammer the
	// engine — Snapshot is safe concurrently with observation.
	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				s := sink.Snapshot()
				fmt.Printf("  live: %d routes, %d words, p99 %v\n",
					s.Routes, s.WordsSwitched, s.P99)
			}
		}
	}()

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			dst := make([]bnbnet.Word, eng.Inputs()) // reused: zero-alloc serving
			for i := 0; i < requests; i++ {
				p := bnbnet.RandomPerm(eng.Inputs(), rng)
				src := make([]bnbnet.Word, len(p))
				for j, d := range p {
					src[j] = bnbnet.Word{Addr: d, Data: uint64(j)}
				}
				ticket, err := eng.Submit(dst, src) // blocks only when the queue is full
				if err != nil {
					log.Fatal(err)
				}
				out, err := ticket.Wait()
				if err != nil {
					log.Fatal(err)
				}
				for j, wd := range out {
					if wd.Addr != j {
						log.Fatalf("output %d carries address %d", j, wd.Addr)
					}
				}
			}
		}(int64(pr))
	}
	wg.Wait()
	close(stop)
	monitor.Wait()
	if tracer != nil {
		if slow := tracer.Slowest(); len(slow) > 0 {
			fmt.Printf("slowest request: %v total (%v queued), plane %d\n",
				slow[0].Total, slow[0].QueueWait, slow[0].Plane)
		}
		fmt.Printf("traced %d spans (%d published)\n", tracer.Started(), tracer.Published())
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	s := sink.Snapshot()
	fmt.Printf("served %d requests (%d words switched), 0 errors expected: %d errors\n",
		s.Routes, s.WordsSwitched, s.Errors)
	fmt.Printf("latency: mean %v, p50 %v, p99 %v, max %v\n",
		s.MeanLatency, s.P50, s.P99, s.MaxLatency)
}
