// Parallel sort: sort N records by key on a machine whose processors are
// connected by a BNB permutation network.
//
// The classic rank-then-route recipe: every processor holds one record;
// the ranks of the keys (computable with a parallel prefix/counting phase)
// become destination addresses, and the interconnection network moves every
// record to its rank position in one permutation pass. With a self-routing
// network the data movement needs no central route computation — the records
// carry their own addresses, which is the entire point of the BNB design.
//
// For contrast, the same records are sorted by Batcher's network, which
// needs no rank phase but pays log N-bit comparators at every element — the
// paper's Table 1 trade-off in action.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	bnbnet "repro"
)

// record is one data item: a sort key and an opaque payload.
type record struct {
	Key     int
	Payload string
}

func main() {
	const m = 4 // 16 processors
	net, err := bnbnet.NewBNB(m, 16)
	if err != nil {
		log.Fatal(err)
	}
	n := net.Inputs()

	// One record per processor, duplicate keys included.
	rng := rand.New(rand.NewSource(11))
	records := make([]record, n)
	for i := range records {
		records[i] = record{Key: rng.Intn(40), Payload: fmt.Sprintf("item-%02d", i)}
	}
	fmt.Println("unsorted keys:", keys(records))

	// Phase 1 — ranking: each record's destination is its stable rank.
	// (On the parallel machine this is a prefix-count; here it is computed
	// directly, as the network only cares about the resulting addresses.)
	ranks := stableRanks(records)

	// Phase 2 — one self-routed permutation pass through the BNB network.
	words := make([]bnbnet.Word, n)
	for i, r := range ranks {
		words[i] = bnbnet.Word{Addr: r, Data: uint64(i)}
	}
	out, err := net.Route(words)
	if err != nil {
		log.Fatal(err)
	}
	sorted := make([]record, n)
	for pos, wd := range out {
		sorted[pos] = records[wd.Data]
	}
	fmt.Println("BNB-sorted:    ", keys(sorted))
	if !sort.SliceIsSorted(sorted, func(a, b int) bool { return sorted[a].Key < sorted[b].Key }) {
		log.Fatal("BNB rank-and-route produced an unsorted sequence")
	}

	// Stability check: equal keys keep their original order because the
	// ranks are assigned stably and the network delivers exactly by address.
	for i := 1; i < n; i++ {
		if sorted[i-1].Key == sorted[i].Key && sorted[i-1].Payload > sorted[i].Payload {
			log.Fatal("stability violated")
		}
	}
	fmt.Println("stable: equal keys kept arrival order ✓")

	// Contrast: Batcher's network sorts without the rank phase (it IS a
	// sorting network), at the cost of full-width comparators.
	bat, err := bnbnet.New("batcher", m, bnbnet.WithDataBits(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhardware for the same job at N=%d (w=16):\n", n)
	for _, nn := range []bnbnet.Network{net, bat} {
		c := nn.Cost()
		fmt.Printf("  %-8s switches=%5d function-slices=%5d\n", nn.Name(), c.Switches, c.FunctionSlices)
	}
	fmt.Println("\nBatcher needs no ranking phase but pays log N-bit compare logic at every")
	fmt.Println("element; the BNB network sorts one destination bit per stage with one-bit")
	fmt.Println("arbiter nodes — the trade the paper quantifies in Tables 1 and 2.")
}

func stableRanks(records []record) []int {
	idx := make([]int, len(records))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return records[idx[a]].Key < records[idx[b]].Key })
	ranks := make([]int, len(records))
	for r, i := range idx {
		ranks[i] = r
	}
	return ranks
}

func keys(records []record) []int {
	ks := make([]int, len(records))
	for i, r := range records {
		ks[i] = r.Key
	}
	return ks
}
