// Circuit switch: use the BNB network in circuit-switched mode — the
// self-routing control plane runs once to establish a connection pattern,
// and the compiled plan then carries arbitrarily many data batches with
// zero routing work per batch.
//
// This is the telephony-style deployment of a permutation network: calls
// (circuits) are set up rarely, data flows constantly. The BNB design fits
// it naturally because its control plane (the bit-sorter slices) and data
// plane (the slaved slices) are physically separate — the paper's Section 3
// structure made operational. The modern API spells it Compile (call
// setup: one arbiter-tree pass, switch states recorded into an immutable
// Plan) and Replay (data transfer: pure wire-following along the stored
// states).
package main

import (
	"fmt"
	"log"
	"math/rand"

	bnbnet "repro"
)

func main() {
	const m = 4 // 16 endpoints
	net, err := bnbnet.New("bnb", m, bnbnet.WithDataBits(64))
	if err != nil {
		log.Fatal(err)
	}
	pr, ok := bnbnet.AsPlanRouter(net)
	if !ok {
		log.Fatal("bnb offers no compiled-plan surface")
	}
	n := net.Inputs()
	rng := rand.New(rand.NewSource(77))

	// A "call setup": endpoints request a connection pattern (here random).
	pattern := bnbnet.RandomPerm(n, rng)
	fmt.Printf("connection request: endpoint i -> endpoint pattern[i]\n  %v\n\n", []int(pattern))

	circuit, err := pr.Compile(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit established: %d switch states stored (control plane ran once)\n\n",
		circuit.Switches())

	// Stream several frames over the same circuit. Replay never re-routes:
	// the stored switch states are the route, and the addresses only attest
	// that each frame belongs to this circuit (a mismatched frame fails with
	// ErrPlanMismatch instead of misdelivering).
	out := make([]bnbnet.Word, n)
	for frame := 0; frame < 3; frame++ {
		words := make([]bnbnet.Word, n)
		for i, d := range pattern {
			words[i] = bnbnet.Word{Addr: d, Data: uint64(frame)<<32 | uint64(rng.Intn(1<<16))}
		}
		if err := pr.Replay(circuit, out, words); err != nil {
			log.Fatal(err)
		}
		for i, d := range pattern {
			if out[d].Data != words[i].Data {
				log.Fatalf("frame %d: endpoint %d's data missed endpoint %d", frame, i, d)
			}
		}
		fmt.Printf("frame %d delivered: e.g. endpoint 0 sent %#x, endpoint %d received it\n",
			frame, words[0].Data, pattern[0])
	}

	// Tearing down and reconnecting with a new pattern is just another
	// Compile; plans are immutable independent values and can coexist.
	second, err := pr.Compile(bnbnet.RandomPerm(n, rng))
	if err != nil {
		log.Fatal(err)
	}
	_ = second
	fmt.Println("\nsecond circuit established concurrently — plans are independent values;")
	fmt.Println("the packet-switched mode (Route) remains available on the same network.")
}
