// Circuit switch: use the BNB network in circuit-switched mode — the
// self-routing control plane runs once to establish a connection pattern,
// and the stored switch states then carry arbitrarily many data batches
// with zero routing work per batch.
//
// This is the telephony-style deployment of a permutation network: calls
// (circuits) are set up rarely, data flows constantly. The BNB design fits
// it naturally because its control plane (the bit-sorter slices) and data
// plane (the slaved slices) are physically separate — the paper's Section 3
// structure made operational.
package main

import (
	"fmt"
	"log"
	"math/rand"

	bnbnet "repro"
)

func main() {
	const m = 4 // 16 endpoints
	net, err := bnbnet.NewBNB(m, 64)
	if err != nil {
		log.Fatal(err)
	}
	n := net.Inputs()
	rng := rand.New(rand.NewSource(77))

	// A "call setup": endpoints request a connection pattern (here random).
	pattern := bnbnet.RandomPerm(n, rng)
	fmt.Printf("connection request: endpoint i -> endpoint pattern[i]\n  %v\n\n", []int(pattern))

	circuit, err := net.Connect(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit established: %d switch states stored (control plane ran once)\n\n",
		circuit.Switches())

	// Stream several frames over the same circuit. The words carry no
	// addresses — the stored switch states are the route.
	for frame := 0; frame < 3; frame++ {
		words := make([]bnbnet.Word, n)
		for i := range words {
			words[i] = bnbnet.Word{Data: uint64(frame)<<32 | uint64(rng.Intn(1<<16))}
		}
		out, err := circuit.Send(words)
		if err != nil {
			log.Fatal(err)
		}
		for i, d := range pattern {
			if out[d] != words[i] {
				log.Fatalf("frame %d: endpoint %d's data missed endpoint %d", frame, i, d)
			}
		}
		fmt.Printf("frame %d delivered: e.g. endpoint 0 sent %#x, endpoint %d received it\n",
			frame, words[0].Data, pattern[0])
	}

	// Tearing down and reconnecting with a new pattern is just another
	// Connect; circuits are independent values and can coexist.
	second, err := net.Connect(bnbnet.RandomPerm(n, rng))
	if err != nil {
		log.Fatal(err)
	}
	_ = second
	fmt.Println("\nsecond circuit established concurrently — circuits are independent values;")
	fmt.Println("the packet-switched mode (Route) remains available on the same network.")
}
