// Quickstart: build a BNB self-routing permutation network, route a
// permutation through it, and read off the hardware/delay reports that
// reproduce the paper's headline comparison against Batcher's sorting
// network.
package main

import (
	"fmt"
	"log"
	"math/rand"

	bnbnet "repro"
)

func main() {
	const (
		m = 5 // N = 32 inputs
		w = 8 // 8-bit payloads ride along with each address
	)
	net, err := bnbnet.NewBNB(m, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BNB network: %d inputs, %d-bit payloads\n\n", net.Inputs(), w)

	// Route a random permutation: word i carries destination p[i] and a
	// payload identifying its source.
	rng := rand.New(rand.NewSource(2026))
	p := bnbnet.RandomPerm(net.Inputs(), rng)
	words := make([]bnbnet.Word, net.Inputs())
	for i, dest := range p {
		words[i] = bnbnet.Word{Addr: dest, Data: 0xCAFE0000 + uint64(i)}
	}
	out, err := net.Route(words)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("self-routed permutation (first 8 outputs):")
	for j := 0; j < 8; j++ {
		fmt.Printf("  output %2d received payload %#x (sent by input %d)\n",
			j, out[j].Data, out[j].Data&0xFFFF)
	}

	// Every output holds the word addressed to it — the Theorem 2 contract.
	for j, wd := range out {
		if wd.Addr != j {
			log.Fatalf("misrouted: output %d has address %d", j, wd.Addr)
		}
	}
	fmt.Println("\nall words delivered to their destination addresses ✓")

	// The paper's comparison: same job, three networks.
	bat, err := bnbnet.New("batcher", m, bnbnet.WithDataBits(w))
	if err != nil {
		log.Fatal(err)
	}
	kop, err := bnbnet.New("koppelman", m, bnbnet.WithDataBits(w))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhardware and delay at N=32 (paper Section 5 units):")
	for _, n := range []bnbnet.Network{net, bat, kop} {
		c, d := n.Cost(), n.Delay()
		fmt.Printf("  %-10s switches=%6d  function=%6d  adders=%6d  delay=%5.0f\n",
			n.Name(), c.Switches, c.FunctionSlices, c.AdderSlices, d.Units(1, 1))
	}
	hw, dl, err := bnbnet.HeadlineRatios(16, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat N=2^16 the BNB/Batcher ratios reach hardware=%.3f, delay=%.3f\n", hw, dl)
	fmt.Println("(approaching the paper's leading-term 1/3 and 2/3)")
}
