// Packet switch: use the BNB network as the switching fabric of a 32-port
// input-queued cell switch — the "switching systems" application of the
// paper's introduction — and measure throughput and delay under three
// traffic patterns.
//
// The run demonstrates the division of labour in a real switch design: the
// permutation network guarantees that any conflict-free batch (a
// permutation) crosses the fabric in one cycle; queueing effects such as
// head-of-line blocking come from the traffic, not the fabric.
package main

import (
	"fmt"
	"log"
	"math/rand"

	bnbnet "repro"
)

func main() {
	const m = 5 // 32 ports
	net, err := bnbnet.NewBNB(m, 0)
	if err != nil {
		log.Fatal(err)
	}
	ports := net.Inputs()
	fmt.Printf("%d-port cell switch with a BNB fabric\n\n", ports)

	scenarios := []struct {
		name    string
		traffic bnbnet.Traffic
		note    string
	}{
		{
			name:    "permutation batches, full load",
			traffic: bnbnet.PermutationTraffic{Load: 1.0},
			note:    "conflict-free batches: the fabric sustains 100% throughput",
		},
		{
			name:    "uniform random, full load",
			traffic: bnbnet.UniformTraffic{Load: 1.0},
			note:    "FIFO head-of-line blocking caps throughput near 2-sqrt(2) = 0.586",
		},
		{
			name:    "uniform random, 50% load",
			traffic: bnbnet.UniformTraffic{Load: 0.5},
			note:    "below saturation: everything delivered with small delay",
		},
		{
			name:    "hotspot (30% of cells to port 0), full load",
			traffic: bnbnet.HotspotTraffic{Load: 1.0, Frac: 0.3, Target: 0},
			note:    "the hot output saturates and drags aggregate throughput down",
		},
	}

	for _, sc := range scenarios {
		sw, err := bnbnet.NewFabric(net)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := sw.Run(sc.traffic, 4000, rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", sc.name)
		fmt.Printf("  throughput %.3f cells/port/cycle, mean wait %.1f cycles, max queue %d, backlog %d\n",
			stats.Throughput(ports), stats.MeanWait(), stats.MaxQueue, stats.Backlog)
		fmt.Printf("  -> %s\n\n", sc.note)
	}

	// Same saturating uniform traffic, but with virtual output queues and an
	// iSLIP-style matcher instead of FIFO inputs: head-of-line blocking
	// disappears and the BNB fabric runs near full speed.
	voq, err := bnbnet.NewFabric(net, bnbnet.WithVOQ())
	if err != nil {
		log.Fatal(err)
	}
	vstats, err := voq.Run(bnbnet.UniformTraffic{Load: 1.0}, 4000, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform random, full load, virtual output queues\n")
	fmt.Printf("  throughput %.3f cells/port/cycle, mean wait %.1f cycles (p99 %d)\n",
		vstats.Throughput(ports), vstats.MeanWait(), vstats.WaitPercentile(0.99))
	fmt.Printf("  -> VOQ + matching removes head-of-line blocking; the fabric was never the limit\n\n")

	// The fabric itself never misroutes: every cycle of every scenario above
	// pushed a real permutation through the BNB network and verified the
	// delivery, so ~20k routed permutations back the summary lines.
	fmt.Println("every cycle routed a full permutation through the BNB network and")
	fmt.Println("verified delivery — the fabric is exercised, not stubbed.")
}
