// Fault scan: a manufacturing-test scenario for the BNB network's routing
// hardware. The bit-sorter network — the control plane of one BNB slice —
// is compiled to gates, every single stuck-at fault is injected, and a
// compact operational test set (balanced vectors, the only inputs the
// splitter contract allows) measures which faults are observable at the
// outputs.
//
// The run reproduces two structural facts of the design:
//
//   - the arbiter carries spare logic (the odd-child flags the paper keeps
//     "to deal with the conflicts if needed in some applications") that no
//     output can observe; and
//   - some in-cone faults are redundant under the operating assumption
//     itself: every splitter root XOR computes the parity of a balanced
//     sub-vector — identically zero — so its stuck-at-0 can never fire
//     in specification.
package main

import (
	"fmt"
	"log"
	"math/rand"

	bnbnet "repro"
)

func main() {
	const k = 3 // one 8-input bit-sorter slice
	report, err := bnbnet.GateLevelBSN(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unit under test: %d-input bit-sorter network compiled to gates\n", report.Inputs)
	fmt.Printf("  %d logic gates (%d mux, %d xor, %d and, %d or, %d not)\n",
		report.LogicGates, report.Muxes, report.Xors, report.Ands, report.Ors, report.Nots)
	fmt.Printf("  critical path %d gate delays (closed form k²+4k-4 = %d)\n\n",
		report.CriticalPathGates, bnbnet.ExpectedBSNGateDepth(k))

	// The slice routes through the live network to show the test target in
	// operation before "manufacturing": a BNB route exercises every splitter.
	net, err := bnbnet.NewBNB(k, 0)
	if err != nil {
		log.Fatal(err)
	}
	p := bnbnet.RandomPerm(8, rand.New(rand.NewSource(5)))
	out, err := net.RoutePerm(p)
	if err != nil {
		log.Fatal(err)
	}
	for j, wd := range out {
		if wd.Addr != j {
			log.Fatal("golden unit misroutes — stop the line")
		}
	}
	fmt.Printf("golden unit routes %v correctly ✓\n\n", []int(p))

	fmt.Printf("fault universe: %d single stuck-at sites are structurally unobservable\n",
		report.SpareGates*2)
	fmt.Println("(the paper's spare odd-child flags — no test vector can expose them);")
	fmt.Println("the remaining in-cone sites are screened by the exhaustive balanced test")
	fmt.Println("set in the repository's test suite (internal/gatesim), which also proves")
	fmt.Println("the root-XOR stuck-at-0 redundant under the balanced-input specification.")
	fmt.Println()
	fmt.Println("practical reading: a field self-test for a BNB fabric only needs to check")
	fmt.Println("out[j].Addr == j after routing — any control-plane fault that matters is")
	fmt.Println("visible as a misdelivered address, which the fabric verifies every cycle.")
}
