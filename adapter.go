package bnbnet

// This file holds the shared routing adapters behind the per-family Network
// wrappers. Two shapes cover every family in the registry: the self-routing
// sorters carry words through an internal Word type of identical layout
// (routeConverted), while the looping-routed rearrangeable networks compute
// an output arrangement from the bare permutation (routeArranged). Both
// funnel RoutePerm through the one permWords convention.

import "fmt"

// wordLike constrains the internal word types of the network packages; they
// all share core.Word's exact layout, so the adapters convert slices
// element-wise without reflection.
type wordLike interface {
	~struct {
		Addr int
		Data uint64
	}
}

// permWords expands a bare permutation into the RoutePerm word convention:
// word i is addressed to p[i] and carries its source index as payload.
func permWords(p Perm) []Word {
	words := make([]Word, len(p))
	for i, d := range p {
		words[i] = Word{Addr: d, Data: uint64(i)}
	}
	return words
}

// routeConverted routes words through a network whose API speaks its own
// word type W, converting on the way in and out. Validation (length,
// permutation property) is the inner network's.
func routeConverted[W wordLike](words []Word, route func([]W) ([]W, error)) ([]Word, error) {
	in := make([]W, len(words))
	for i, wd := range words {
		in[i] = W(wd)
	}
	out, err := route(in)
	if err != nil {
		return nil, err
	}
	res := make([]Word, len(out))
	for i, wd := range out {
		res[i] = Word(wd)
	}
	return res, nil
}

// routeArranged routes words through a looping-routed network: route maps
// the destination permutation to an output arrangement (arrangement[j] is
// the input whose word exits on output j), and every delivery is verified
// against the requested addresses. name prefixes the validation errors.
func routeArranged(name string, n int, words []Word, route func(Perm) (Perm, error)) ([]Word, error) {
	if len(words) != n {
		return nil, fmt.Errorf("%s: got %d words, want %d", name, len(words), n)
	}
	p := make(Perm, len(words))
	for i, wd := range words {
		p[i] = wd.Addr
	}
	arrangement, err := route(p)
	if err != nil {
		return nil, err
	}
	out := make([]Word, len(words))
	for j, src := range arrangement {
		out[j] = words[src]
	}
	for j, wd := range out {
		if wd.Addr != j {
			return nil, fmt.Errorf("%s: looping misdelivered address %d to output %d", name, wd.Addr, j)
		}
	}
	return out, nil
}
