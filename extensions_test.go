package bnbnet

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestLowerBoundComparisonFacade(t *testing.T) {
	rows, err := LowerBoundComparison(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || rows[0].Network != "lower-bound" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Factor != 1 {
		t.Errorf("bound factor = %v, want 1", rows[0].Factor)
	}
	if rows[1].Network != "waksman" || rows[1].Factor >= rows[2].Factor {
		t.Errorf("waksman should be the tightest real design: %+v", rows[1])
	}
	for _, r := range rows[1:] {
		if r.Factor < 1 {
			t.Errorf("%s factor %v below 1", r.Network, r.Factor)
		}
	}
	if _, err := LowerBoundComparison(0); err == nil {
		t.Error("LowerBoundComparison(0) accepted")
	}
}

func TestPipelineFacade(t *testing.T) {
	bnb, err := PipelineBNB(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := PipelineBatcher(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bnb.Stages != bat.Stages {
		t.Errorf("stage counts differ: %d vs %d (both are (1/2)m(m+1))", bnb.Stages, bat.Stages)
	}
	if bnb.Throughput(1, 1) >= bat.Throughput(1, 1) {
		t.Error("pipelined BNB should not out-run Batcher at equal unit delays (see EXPERIMENTS.md)")
	}
	if _, err := PipelineBNB(0, 0); err == nil {
		t.Error("PipelineBNB(0) accepted")
	}
	if _, err := PipelineBatcher(0, 0); err == nil {
		t.Error("PipelineBatcher(0) accepted")
	}
}

func TestCompletePermFacadeAndRouting(t *testing.T) {
	// A realistic partial batch routed through the BNB network after
	// padding — the fabric's per-cycle discipline in miniature.
	partial := []int{5, -1, 0, -1, 7, -1, 2, -1}
	p, err := CompletePerm(partial)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewBNB(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.RoutePerm(p)
	if err != nil {
		t.Fatal(err)
	}
	for j, wd := range out {
		if wd.Addr != j {
			t.Fatalf("misrouted padded batch at output %d", j)
		}
	}
	// Real cells kept their destinations.
	for i, d := range partial {
		if d != -1 && p[i] != d {
			t.Errorf("padding changed defined destination %d", i)
		}
	}
	if _, err := CompletePerm([]int{0, 0, -1}); err == nil {
		t.Error("CompletePerm accepted duplicates")
	}
}

func TestGateLevelBSNFacade(t *testing.T) {
	r, err := GateLevelBSN(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Inputs != 8 {
		t.Errorf("Inputs = %d, want 8", r.Inputs)
	}
	// From the gatesim inventory: 13 arbiter nodes -> 13 AND/OR/NOT each;
	// XORs = 13 + (12-4) switch controls = 21; muxes = 24.
	if r.Ands != 13 || r.Ors != 13 || r.Nots != 13 {
		t.Errorf("AND/OR/NOT = %d/%d/%d, want 13 each", r.Ands, r.Ors, r.Nots)
	}
	if r.Xors != 21 {
		t.Errorf("XORs = %d, want 21", r.Xors)
	}
	if r.Muxes != 24 {
		t.Errorf("muxes = %d, want 24", r.Muxes)
	}
	if r.LogicGates != 13*3+21+24 {
		t.Errorf("LogicGates = %d, want %d", r.LogicGates, 13*3+21+24)
	}
	if r.CriticalPathGates != ExpectedBSNGateDepth(3) {
		t.Errorf("critical path %d != closed form %d", r.CriticalPathGates, ExpectedBSNGateDepth(3))
	}
	if r.SpareGates == 0 {
		t.Error("expected spare (unused odd-flag) gates in the arbiter")
	}
	if _, err := GateLevelBSN(0); err == nil {
		t.Error("GateLevelBSN(0) accepted")
	}
}

func TestExpectedBSNGateDepthValues(t *testing.T) {
	if ExpectedBSNGateDepth(1) != 1 {
		t.Error("k=1 depth should be 1 (one mux)")
	}
	if ExpectedBSNGateDepth(4) != 16+16-4 {
		t.Errorf("k=4 depth = %d, want 28", ExpectedBSNGateDepth(4))
	}
}

func TestOmegaStudyFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, err := OmegaStudy(3, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Inputs != 8 || r.Switches != 12 {
		t.Errorf("geometry = (%d,%d)", r.Inputs, r.Switches)
	}
	if r.RoutablePermutations != 4096 {
		t.Errorf("RoutablePermutations = %v, want 4096", r.RoutablePermutations)
	}
	exact := 4096.0 / 40320.0
	if math.Abs(r.SampledPassRate-exact) > 0.025 {
		t.Errorf("pass rate %v far from exact %v", r.SampledPassRate, exact)
	}
	if _, err := OmegaStudy(0, 10, rng); err == nil {
		t.Error("OmegaStudy(0) accepted")
	}
}

func TestOmegaPassableFacade(t *testing.T) {
	ok, err := OmegaPassable(RandomPerm(8, rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	_ = ok // any verdict is fine; the point is no error on a valid size
	id := Perm{0, 1, 2, 3}
	ok, err = OmegaPassable(id)
	if err != nil || !ok {
		t.Errorf("identity should pass: %v %v", ok, err)
	}
	if _, err := OmegaPassable(Perm{0}); err == nil {
		t.Error("size-1 accepted")
	}
	if _, err := OmegaPassable(Perm{0, 1, 2}); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

// TestOmegaVsBNBContrast pins the repository's core contrast: the omega
// network blocks most random permutations while the BNB network routes all
// of them, at a log^2 N factor more switches.
func TestOmegaVsBNBContrast(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	study, err := OmegaStudy(6, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if study.SampledPassRate > 0.01 {
		t.Errorf("omega pass rate %v unexpectedly high at N=64", study.SampledPassRate)
	}
	n, err := NewBNB(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		out, err := n.RoutePerm(RandomPerm(64, rng))
		if err != nil {
			t.Fatal(err)
		}
		for j, wd := range out {
			if wd.Addr != j {
				t.Fatal("BNB misrouted")
			}
		}
	}
}

func TestFigBatcherFacade(t *testing.T) {
	out, err := FigBatcher(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "19 comparators") {
		t.Error("diagram missing comparator count")
	}
	if _, err := FigBatcher(0); err == nil {
		t.Error("FigBatcher(0) accepted")
	}
}

// TestCircuitMode exercises the compute-once/replay-many circuit-switched
// API end to end.
func TestCircuitMode(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net, err := NewBNB(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPerm(net.Inputs(), rng)
	circuit, err := net.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := net.Inputs() / 2 * 5 * 6 / 2; circuit.Switches() != want {
		t.Errorf("circuit switches = %d, want %d", circuit.Switches(), want)
	}
	for batch := 0; batch < 5; batch++ {
		words := make([]Word, net.Inputs())
		for i := range words {
			words[i] = Word{Data: rng.Uint64()}
		}
		out, err := circuit.Send(words)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range p {
			if out[d] != words[i] {
				t.Fatalf("batch %d: input %d missed output %d", batch, i, d)
			}
		}
	}
	if _, err := net.Connect(Perm{0, 1}); err == nil {
		t.Error("Connect accepted wrong-length permutation")
	}
	if _, err := circuit.Send(make([]Word, 3)); err == nil {
		t.Error("Send accepted wrong-length batch")
	}
}

// TestBNBExtendedMethods covers the traced and parallel entry points of the
// concrete facade type.
func TestBNBExtendedMethods(t *testing.T) {
	net, err := NewBNB(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPerm(16, rand.New(rand.NewSource(2)))
	words := make([]Word, 16)
	for i, d := range p {
		words[i] = Word{Addr: d, Data: uint64(i)}
	}
	out, trace, err := net.RouteTraced(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 5 {
		t.Errorf("trace has %d snapshots, want 5", len(trace))
	}
	par, err := net.RouteParallel(words, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := range out {
		if out[j] != par[j] {
			t.Fatalf("parallel and traced routes disagree at %d", j)
		}
	}
}

// TestVOQFabricFacade contrasts the two queueing disciplines through the
// public API: VOQ lifts the saturated uniform throughput far above the FIFO
// head-of-line limit on the same BNB fabric.
func TestVOQFabricFacade(t *testing.T) {
	net, err := NewBNB(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	voq, err := NewFabric(net, WithVOQ())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := voq.Run(UniformTraffic{Load: 1.0}, 1500, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := NewFabric(net)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fifo.Run(UniformTraffic{Load: 1.0}, 1500, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if vs.Throughput(32) <= fs.Throughput(32)+0.15 {
		t.Errorf("VOQ %v does not clearly beat FIFO %v", vs.Throughput(32), fs.Throughput(32))
	}
	if _, err := NewFabric(nil, WithVOQ()); err == nil {
		t.Error("NewFabric(nil, WithVOQ()) accepted")
	}
}

// TestBaselineStudyFacade checks the bare-skeleton blocking quantification.
func TestBaselineStudyFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r, err := BaselineStudy(3, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.RoutablePermutations != 4096 {
		t.Errorf("RoutablePermutations = %v, want 4096", r.RoutablePermutations)
	}
	exact := 4096.0 / 40320.0
	if math.Abs(r.SampledPassRate-exact) > 0.025 {
		t.Errorf("pass rate %v far from exact %v", r.SampledPassRate, exact)
	}
	if _, err := BaselineStudy(0, 10, rng); err == nil {
		t.Error("BaselineStudy(0) accepted")
	}
}

func TestFigSplitterInstanceFacade(t *testing.T) {
	out, err := FigSplitterInstance(3, []uint8{1, 0, 1, 1, 0, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Theorem 3") {
		t.Error("missing balance line")
	}
	if _, err := FigSplitterInstance(0, nil); err == nil {
		t.Error("FigSplitterInstance(0) accepted")
	}
}
