package bnbnet

// This file exposes the reproduction's extension studies — analyses the
// paper gestures at but does not carry out — through the public API:
// the information-theoretic switch lower bound, pipelined operation,
// gate-level validation of the bit-sorter network, the omega-network
// blocking quantification, and partial-permutation padding.

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/batcher"
	"repro/internal/bitonic"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gatesim"
	"repro/internal/omega"
	"repro/internal/perm"
	"repro/internal/render"
	"repro/internal/waksman"
)

// LowerBoundRow reports a network's 2x2-switch spend against the
// information-theoretic minimum ceil(log2(N!)).
type LowerBoundRow = cost.LowerBoundRow

// LowerBoundComparison evaluates every design's switch count against the
// log2(N!) bound at order m (data path only, w = 0).
func LowerBoundComparison(m int) ([]LowerBoundRow, error) {
	return cost.LowerBoundComparison(m)
}

// PipelineReport describes pipelined operation of a staged network.
type PipelineReport = cost.PipelineReport

// PipelineBNB analyzes the BNB network pipelined at switch-column
// granularity.
func PipelineBNB(m, w int) (PipelineReport, error) { return cost.BNBPipeline(m, w) }

// PipelineBatcher analyzes Batcher's network pipelined at comparator-stage
// granularity.
func PipelineBatcher(m, w int) (PipelineReport, error) { return cost.BatcherPipeline(m, w) }

// CompletePerm pads a partial destination assignment (-1 = idle input) to a
// full permutation by giving idle inputs the unused outputs in order — the
// dummy-cell discipline sorting-network fabrics use every cycle.
func CompletePerm(partial []int) (Perm, error) { return perm.Complete(partial) }

// GateReport summarizes the gate-level compilation of a 2^k-input
// bit-sorter network: the control and data plane of one BNB slice compiled
// to XOR/AND/OR/NOT/mux gates.
type GateReport struct {
	// Inputs is the network size 2^k.
	Inputs int
	// LogicGates is the total gate count excluding inputs/constants.
	LogicGates int
	// Muxes, Xors, Ands, Ors, Nots break the count down by kind.
	Muxes, Xors, Ands, Ors, Nots int
	// CriticalPathGates is the measured logic depth in unit gate delays.
	CriticalPathGates int
	// SpareGates counts gates outside the outputs' fan-in cone — the
	// paper's unused "other flags", kept for conflict handling in other
	// applications.
	SpareGates int
}

// GateLevelBSN compiles the 2^k-input bit-sorter network to gates and
// reports its inventory and measured critical path. The compiled circuit is
// proven equivalent to the behavioural network in the test suite.
func GateLevelBSN(k int) (GateReport, error) {
	c, err := gatesim.BuildBSN(k)
	if err != nil {
		return GateReport{}, err
	}
	nl := c.Netlist
	cp, err := nl.CriticalPath(c.Outputs)
	if err != nil {
		return GateReport{}, err
	}
	cone, err := nl.FanInCone(c.Outputs)
	if err != nil {
		return GateReport{}, err
	}
	// In a compiled BSN every primary input feeds a switch (so inputs are
	// always inside the cone) and no constant gates exist, so the spare
	// count is exactly the out-of-cone gates.
	spare := 0
	for _, in := range cone {
		if !in {
			spare++
		}
	}
	return GateReport{
		Inputs:            1 << uint(k),
		LogicGates:        nl.LogicGates(),
		Muxes:             nl.CountKind(gatesim.KindMux),
		Xors:              nl.CountKind(gatesim.KindXor),
		Ands:              nl.CountKind(gatesim.KindAnd),
		Ors:               nl.CountKind(gatesim.KindOr),
		Nots:              nl.CountKind(gatesim.KindNot),
		CriticalPathGates: cp,
		SpareGates:        spare,
	}, nil
}

// ExpectedBSNGateDepth returns the closed-form gate-level critical path of
// the compiled BSN: k^2 + 4k - 4 for k >= 2 (1 for k = 1).
func ExpectedBSNGateDepth(k int) int { return gatesim.ExpectedBSNGateDepth(k) }

// OmegaReport quantifies the blocking of the log N-stage omega network —
// the structural foil motivating permutation networks.
type OmegaReport struct {
	// Inputs is N.
	Inputs int
	// Switches is the switch count (N/2) log N.
	Switches int
	// RoutablePermutations is the exact count 2^{(N/2) log N} of
	// realizable permutations (out of N!).
	RoutablePermutations float64
	// SampledPassRate is the measured fraction of random permutations that
	// route without conflict.
	SampledPassRate float64
}

// OmegaStudy builds an omega network of order m and measures its blocking
// on `trials` random permutations.
func OmegaStudy(m, trials int, rng *rand.Rand) (OmegaReport, error) {
	n, err := omega.New(m)
	if err != nil {
		return OmegaReport{}, err
	}
	rate, err := n.PassRate(trials, rng)
	if err != nil {
		return OmegaReport{}, err
	}
	return OmegaReport{
		Inputs:               n.Inputs(),
		Switches:             n.Switches(),
		RoutablePermutations: n.RoutablePermutations(),
		SampledPassRate:      rate,
	}, nil
}

// OmegaPassable reports whether the omega network of the matching order
// routes p without conflict.
func OmegaPassable(p Perm) (bool, error) {
	if len(p) < 2 {
		return false, fmt.Errorf("bnbnet: omega needs at least 2 inputs, got %d", len(p))
	}
	m := 0
	for n := len(p); n > 1; n >>= 1 {
		m++
	}
	if 1<<uint(m) != len(p) {
		return false, fmt.Errorf("bnbnet: omega needs a power-of-two size, got %d", len(p))
	}
	n, err := omega.New(m)
	if err != nil {
		return false, err
	}
	return n.Passable(p)
}

// FigBatcher renders the odd-even sorting network of order m as a
// Knuth-style comparator diagram.
func FigBatcher(m int) (string, error) {
	n, err := batcher.New(m, 0)
	if err != nil {
		return "", err
	}
	return render.BatcherDiagram(n), nil
}

// ---------------------------------------------------------------------------
// Waksman network
// ---------------------------------------------------------------------------

type waksmanNetwork struct{ n *waksman.Network }

func newWaksmanNetwork(m int) (Network, error) {
	n, err := waksman.New(m)
	if err != nil {
		return nil, err
	}
	return waksmanNetwork{n: n}, nil
}

func (w waksmanNetwork) Name() string { return "waksman" }

func (w waksmanNetwork) Inputs() int { return w.n.Inputs() }

func (w waksmanNetwork) Route(words []Word) ([]Word, error) {
	return routeArranged("waksman", w.n.Inputs(), words, func(p Perm) (Perm, error) {
		arrangement, _, err := w.n.Route(p)
		return arrangement, err
	})
}

func (w waksmanNetwork) RoutePerm(p Perm) ([]Word, error) { return w.Route(permWords(p)) }

func (w waksmanNetwork) Cost() Cost { return Cost{Switches: w.n.Switches()} }

func (w waksmanNetwork) Delay() Delay {
	// Same stage depth as the Beneš network: 2 logN - 1 switch columns.
	return Delay{SwitchUnits: 2*w.n.M() - 1}
}

// ---------------------------------------------------------------------------
// Bitonic network
// ---------------------------------------------------------------------------

type bitonicNetwork struct{ n *bitonic.Network }

func newBitonicNetwork(m int) (Network, error) {
	n, err := bitonic.New(m)
	if err != nil {
		return nil, err
	}
	return bitonicNetwork{n: n}, nil
}

func (b bitonicNetwork) Name() string { return "bitonic" }

func (b bitonicNetwork) Inputs() int { return b.n.Inputs() }

func (b bitonicNetwork) Route(words []Word) ([]Word, error) {
	return routeConverted(words, b.n.Route)
}

func (b bitonicNetwork) RoutePerm(p Perm) ([]Word, error) { return b.Route(permWords(p)) }

func (b bitonicNetwork) Cost() Cost {
	m := b.n.M()
	c := b.n.Comparators()
	// Same per-comparator slice model as the odd-even network: (logN + w)
	// switch slices and logN compare slices, with w = 0 here.
	return Cost{Switches: c * m, FunctionSlices: c * m}
}

func (b bitonicNetwork) Delay() Delay {
	return Delay{SwitchUnits: b.n.Stages(), FunctionUnits: b.n.Stages() * b.n.M()}
}

// BaselineStudy mirrors OmegaStudy for the plain baseline network — the
// bare GBN skeleton with destination-tag routing. Same 2^{(N/2)logN}
// routable count as omega over different wiring; notably it blocks even the
// identity permutation for m >= 2 (stage 0 consumes the MSB while adjacent
// inputs differ in the LSB).
func BaselineStudy(m, trials int, rng *rand.Rand) (OmegaReport, error) {
	n, err := baseline.New(m)
	if err != nil {
		return OmegaReport{}, err
	}
	rate, err := n.PassRate(trials, rng)
	if err != nil {
		return OmegaReport{}, err
	}
	return OmegaReport{
		Inputs:               n.Inputs(),
		Switches:             n.Switches(),
		RoutablePermutations: n.RoutablePermutations(),
		SampledPassRate:      rate,
	}, nil
}

// FigRouteInstance renders one routed permutation through a BNB network of
// order m as a stage-by-stage address table — the dynamic companion of the
// structural figures.
func FigRouteInstance(m int, p Perm) (string, error) {
	n, err := core.New(m, 0)
	if err != nil {
		return "", err
	}
	return render.RouteInstance(n, p)
}

// FigSplitterInstance renders one concrete splitter decision — the arbiter
// states, flags, switch settings and balanced output — for the given input
// bit vector on sp(p).
func FigSplitterInstance(p int, bits []uint8) (string, error) {
	return render.SplitterInstance(p, bits)
}
