package bnbnet

// The exported-API golden test: every exported symbol of the root package —
// functions, methods, types, struct fields, interface methods, consts and
// vars — is rendered into a sorted signature list and compared against
// testdata/api_golden.txt. An unreviewed surface change (a renamed method,
// a widened signature, an accidentally exported helper) fails here first;
// an intended change is reviewed by regenerating the file:
//
//	go test -run TestExportedAPIGolden -update-api

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPIGolden = flag.Bool("update-api", false, "rewrite testdata/api_golden.txt from the current exported surface")

const apiGoldenPath = "testdata/api_golden.txt"

func TestExportedAPIGolden(t *testing.T) {
	got := renderExportedAPI(t)
	if *updateAPIGolden {
		if err := os.MkdirAll(filepath.Dir(apiGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d lines)", apiGoldenPath, strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update-api)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotSet := map[string]bool{}
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range wantLines {
		wantSet[l] = true
	}
	var added, removed []string
	for _, l := range gotLines {
		if !wantSet[l] {
			added = append(added, l)
		}
	}
	for _, l := range wantLines {
		if !gotSet[l] {
			removed = append(removed, l)
		}
	}
	var b strings.Builder
	b.WriteString("exported API surface drifted from testdata/api_golden.txt\n")
	for _, l := range added {
		fmt.Fprintf(&b, "  + %s\n", l)
	}
	for _, l := range removed {
		fmt.Fprintf(&b, "  - %s\n", l)
	}
	b.WriteString("review the change, then regenerate with: go test -run TestExportedAPIGolden -update-api")
	t.Fatal(b.String())
}

// renderExportedAPI parses every non-test file of the package directory and
// renders its exported surface as one sorted line per symbol. Parameter
// names are dropped (renaming one is not an API change); everything
// type-shaped is printed in source form.
func renderExportedAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse package: %v", err)
	}
	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv == nil {
						add("func %s%s", d.Name.Name, renderFuncType(fset, d.Type))
						continue
					}
					recv := renderExpr(fset, d.Recv.List[0].Type)
					if !exportedRecv(recv) {
						continue
					}
					add("method (%s) %s%s", recv, d.Name.Name, renderFuncType(fset, d.Type))
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								lines = append(lines, renderType(fset, s)...)
							}
						case *ast.ValueSpec:
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							for _, name := range s.Names {
								if name.IsExported() {
									add("%s %s", kind, name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// renderType renders one exported type declaration: its kind line plus one
// line per exported struct field or interface method.
func renderType(fset *token.FileSet, s *ast.TypeSpec) []string {
	name := s.Name.Name
	var lines []string
	switch tt := s.Type.(type) {
	case *ast.StructType:
		lines = append(lines, fmt.Sprintf("type %s struct", name))
		for _, f := range tt.Fields.List {
			if len(f.Names) == 0 { // embedded
				if embedded := renderExpr(fset, f.Type); exportedRecv(embedded) {
					lines = append(lines, fmt.Sprintf("type %s embeds %s", name, embedded))
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					lines = append(lines, fmt.Sprintf("type %s field %s %s", name, fn.Name, renderExpr(fset, f.Type)))
				}
			}
		}
	case *ast.InterfaceType:
		lines = append(lines, fmt.Sprintf("type %s interface", name))
		for _, f := range tt.Methods.List {
			if len(f.Names) == 0 {
				lines = append(lines, fmt.Sprintf("type %s embeds %s", name, renderExpr(fset, f.Type)))
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					ft, ok := f.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					lines = append(lines, fmt.Sprintf("type %s method %s%s", name, fn.Name, renderFuncType(fset, ft)))
				}
			}
		}
	default:
		kind := "= " + renderExpr(fset, s.Type)
		if !s.Assign.IsValid() {
			kind = renderExpr(fset, s.Type)
		}
		lines = append(lines, fmt.Sprintf("type %s %s", name, kind))
	}
	return lines
}

// renderFuncType renders a signature as "(T1, T2) (R1, R2)" with parameter
// names dropped.
func renderFuncType(fset *token.FileSet, ft *ast.FuncType) string {
	params := renderFieldTypes(fset, ft.Params)
	results := renderFieldTypes(fset, ft.Results)
	switch {
	case results == "":
		return "(" + params + ")"
	case strings.Contains(results, ","):
		return "(" + params + ") (" + results + ")"
	default:
		return "(" + params + ") " + results
	}
}

func renderFieldTypes(fset *token.FileSet, fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		typ := renderExpr(fset, f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, typ)
		}
	}
	return strings.Join(parts, ", ")
}

func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return buf.String()
}

// exportedRecv reports whether a receiver or embedded type name like
// "*Cluster" or "plancache.Stats" denotes an exported local name.
func exportedRecv(name string) bool {
	name = strings.TrimPrefix(name, "*")
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.IndexByte(name, '['); i >= 0 { // generic receiver
		name = name[:i]
	}
	return name != "" && ast.IsExported(name)
}
