package bnbnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterDifferential is the correctness acceptance: the cluster must
// be word-for-word indistinguishable from the monolithic network across
// the full sweep battery, including exhaustive N! enumeration at N = 8.
func TestClusterDifferential(t *testing.T) {
	opts := CheckOptions{RandomTrials: 50, AdversarialClimbs: 1}
	for _, tc := range []struct{ shards, shardOrder int }{
		{2, 2}, // N = 8: exhaustive battery
		{4, 1}, // N = 8 from 2-port shards: exhaustive, maximal inter-shard traffic
		{4, 3}, // N = 32: structured + random battery
	} {
		report, err := VerifyCluster("bnb", tc.shards, tc.shardOrder, opts)
		if err != nil {
			t.Fatalf("VerifyCluster(%d shards, order %d): %v", tc.shards, tc.shardOrder, err)
		}
		if !report.OK() {
			t.Fatalf("VerifyCluster(%d shards, order %d): %d failures: %v",
				tc.shards, tc.shardOrder, len(report.Failures), report.Failures)
		}
		if report.Checked == 0 {
			t.Fatalf("VerifyCluster(%d shards, order %d): battery checked nothing", tc.shards, tc.shardOrder)
		}
	}
}

func TestVerifyClusterRejectsNonPowerShards(t *testing.T) {
	if _, err := VerifyCluster("bnb", 3, 2, CheckOptions{}); err == nil {
		t.Fatal("VerifyCluster accepted a non-power-of-two shard count")
	}
}

// TestClusterSurfaces checks that the cluster offers the same optional
// surfaces as the monolithic networks through the standard discovery
// helpers, and that compiled plans are bound to their router kind.
func TestClusterSurfaces(t *testing.T) {
	c, err := NewCluster("bnb", 3, WithShards(4))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	var n Network = c
	if _, ok := AsBulkRouter(n); !ok {
		t.Fatal("cluster does not offer BulkRouter")
	}
	if _, ok := AsTracedRouter(n); !ok {
		t.Fatal("cluster does not offer TracedRouter")
	}
	pr, ok := AsPlanRouter(n)
	if !ok {
		t.Fatal("cluster does not offer PlanRouter")
	}

	size := c.Inputs()
	if size != 4*8 {
		t.Fatalf("Inputs = %d, want 32", size)
	}
	rng := rand.New(rand.NewSource(1))
	p := RandomPerm(size, rng)
	pl, err := pr.Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if pl.Inputs() != size || pl.M() != 3 {
		t.Fatalf("plan shape: Inputs=%d M=%d, want %d/3", pl.Inputs(), pl.M(), size)
	}
	if got := pl.Perm(); len(got) != size || got[0] != p[0] {
		t.Fatalf("plan perm does not echo the compiled permutation")
	}
	if pl.Switches() == 0 {
		t.Fatal("cluster plan reports zero switches")
	}
	src := make([]Word, size)
	dst := make([]Word, size)
	for i := range src {
		src[i] = Word{Addr: p[i], Data: uint64(i)}
	}
	for rep := 0; rep < 2; rep++ {
		if err := pr.Replay(pl, dst, src); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		for i, d := range p {
			if dst[d].Addr != d || dst[d].Data != uint64(i) {
				t.Fatalf("replay %d: dst[%d] = %+v, want {%d %d}", rep, d, dst[d], d, i)
			}
		}
	}

	// Cross-kind replays fail cleanly instead of misdelivering.
	bnb, err := NewBNB(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	monoPlan, err := bnb.Compile(RandomPerm(8, rng))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(monoPlan, dst, src); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("cluster replay of a BNB plan: got %v, want ErrPlanMismatch", err)
	}
	smallDst := make([]Word, 8)
	if err := bnb.Replay(pl, smallDst, smallDst); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("BNB replay of a cluster plan: got %v, want ErrPlanMismatch", err)
	}

	// Trace snapshots: 4 stages, each a conservation of the input words.
	out, snaps, err := c.RouteTraced(src)
	if err != nil {
		t.Fatalf("RouteTraced: %v", err)
	}
	if len(snaps) != 4 {
		t.Fatalf("RouteTraced returned %d snapshots, want 4", len(snaps))
	}
	for si, snap := range snaps {
		seen := make(map[Word]int, size)
		for _, w := range src {
			seen[w]++
		}
		for _, w := range snap {
			seen[Word{Addr: w.Addr, Data: w.Data}]--
		}
		// Output snapshot words carry their delivery address, not the
		// source address — skip conservation there (it is checked below).
		if si == 3 {
			continue
		}
		for w, n := range seen {
			if n != 0 {
				t.Fatalf("snapshot %d does not conserve word %+v (delta %d)", si, w, n)
			}
		}
	}
	for i, d := range p {
		if out[d].Data != uint64(i) {
			t.Fatalf("traced route misdelivered element %d", i)
		}
	}

	// Cost and delay aggregate the shard figures plus the exchange stages.
	cost := c.Cost()
	if cost.Switches == 0 || cost.Crosspoints != 2*8*4*4 {
		t.Fatalf("cluster cost = %+v, want 4 shard fabrics + %d crosspoints", cost, 2*8*4*4)
	}
	shardDelay := bnb.Delay()
	if d := c.Delay(); d.SwitchUnits != shardDelay.SwitchUnits+2 {
		t.Fatalf("cluster delay = %+v, want shard delay + 2 exchange stages", d)
	}
}

// TestClusterRouterContract drives Engine, Supervised and Cluster through
// the uniform Router interface.
func TestClusterRouterContract(t *testing.T) {
	n, err := New("bnb", 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(n, WithMetrics(NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervised("bnb", 3)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster("bnb", 3, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for _, r := range []Router{eng, sup, cl} {
		size := r.Inputs()
		batch := make([][]Word, 3)
		perms := make([]Perm, len(batch))
		for i := range batch {
			perms[i] = RandomPerm(size, rng)
			batch[i] = make([]Word, size)
			for j, d := range perms[i] {
				batch[i][j] = Word{Addr: d, Data: uint64(j)}
			}
		}
		outs, errs := r.RouteBatch(batch)
		for i := range batch {
			if errs[i] != nil {
				t.Fatalf("%T RouteBatch[%d]: %v", r, i, errs[i])
			}
			for j, d := range perms[i] {
				if outs[i][d].Data != uint64(j) {
					t.Fatalf("%T RouteBatch[%d]: misdelivered element %d", r, i, j)
				}
			}
		}
		st := r.Stats()
		if st.Kind == "" || st.Inputs != size {
			t.Fatalf("%T Stats = %+v: missing kind or inputs", r, st)
		}
		if r.InFlight() != 0 {
			t.Fatalf("%T InFlight = %d after settled batch", r, r.InFlight())
		}
		if err := r.Drain(context.Background()); err != nil {
			t.Fatalf("%T Drain: %v", r, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("%T Close after drain: %v", r, err)
		}
	}
	if st := eng.Stats(); st.Kind != "engine" || st.Metrics == nil {
		t.Fatalf("engine stats = %+v, want kind engine with metrics", st)
	}
	if st := sup.Stats(); st.Kind != "supervised" || len(st.Planes) != 2 || len(st.PlanCaches) != 2 {
		t.Fatalf("supervised stats = %+v, want 2 planes with plan caches", st)
	}
	if st := cl.Stats(); st.Kind != "cluster" || len(st.Shards) != 2 || len(st.Shards[1].Planes) != 2 {
		t.Fatalf("cluster stats = %+v, want 2 shards of 2 planes", st)
	}
	if err := cl.Publish("test-cluster-stats"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := cl.Publish("test-cluster-stats"); err == nil {
		t.Fatal("Publish accepted a duplicate expvar name")
	}
}

// TestClusterMembership exercises live shard add and drain under
// concurrent traffic: every request either delivers word-for-word
// correctly or fails with a clean admission error; nothing is lost or
// misrouted across the membership changes.
func TestClusterMembership(t *testing.T) {
	c, err := NewCluster("bnb", 3, WithShards(2))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	var stop atomic.Bool
	var routed, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				size := c.Inputs()
				p := RandomPerm(size, rng)
				src := make([]Word, size)
				for i, d := range p {
					src[i] = Word{Addr: d, Data: uint64(i)}
				}
				dst := make([]Word, size)
				err := c.RouteInto(dst, src)
				if err != nil {
					// The only acceptable failure is a membership change
					// between reading Inputs and routing.
					if errors.Is(err, ErrBadSize) {
						rejected.Add(1)
						continue
					}
					t.Errorf("RouteInto: %v", err)
					return
				}
				for i, d := range p {
					if dst[d].Addr != d || dst[d].Data != uint64(i) {
						t.Errorf("misrouted: dst[%d] = %+v, want {%d %d}", d, dst[d], d, i)
						return
					}
				}
				routed.Add(1)
			}
		}(int64(g))
	}

	deadline := time.Now().Add(10 * time.Second)
	for cycle := 0; cycle < 3 && time.Now().Before(deadline); cycle++ {
		time.Sleep(20 * time.Millisecond)
		got, err := c.AddShard(context.Background())
		if err != nil {
			t.Fatalf("AddShard: %v", err)
		}
		if got != 3 {
			t.Fatalf("AddShard reported %d shards, want 3", got)
		}
		if c.Inputs() != 3*8 {
			t.Fatalf("Inputs = %d after add, want 24", c.Inputs())
		}
		time.Sleep(20 * time.Millisecond)
		if got, err = c.RemoveShard(context.Background()); err != nil {
			t.Fatalf("RemoveShard: %v", err)
		}
		if got != 2 {
			t.Fatalf("RemoveShard reported %d shards, want 2", got)
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	if routed.Load() == 0 {
		t.Fatal("no request completed during the membership churn")
	}
	if c.ShardsAdded() != 3 || c.ShardsRemoved() != 3 {
		t.Fatalf("membership counters = %d added / %d removed, want 3/3", c.ShardsAdded(), c.ShardsRemoved())
	}
	t.Logf("membership churn: %d routed, %d resized-rejected", routed.Load(), rejected.Load())
}

func TestClusterLifecycle(t *testing.T) {
	c, err := NewCluster("bnb", 3, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	size := c.Inputs()
	buf := make([]Word, size)
	for i := range buf {
		buf[i] = Word{Addr: i}
	}
	if err := c.RouteInto(buf, buf); !errors.Is(err, ErrDraining) {
		t.Fatalf("route after drain: got %v, want ErrDraining", err)
	}
	if _, err := c.AddShard(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("AddShard after drain: got %v, want ErrDraining", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close after drain: %v", err)
	}
	if err := c.RouteInto(buf, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("route after close: got %v, want ErrClosed", err)
	}

	// Close without a drain reports ErrClosed on the second call, like the
	// engine lifecycle.
	c2, err := NewCluster("bnb", 3)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Shards() != 2 {
		t.Fatalf("default shard count = %d, want 2", c2.Shards())
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := c2.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: got %v, want ErrClosed", err)
	}
	if _, err := c2.RemoveShard(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("RemoveShard after close: got %v, want ErrClosed", err)
	}
}

func TestClusterOptionRejections(t *testing.T) {
	if _, err := New("bnb", 3, WithShards(2)); err == nil {
		t.Fatal("New accepted WithShards")
	}
	n, _ := New("bnb", 3)
	if _, err := NewEngine(n, WithShards(2)); err == nil {
		t.Fatal("NewEngine accepted WithShards")
	}
	if _, err := NewSupervised("bnb", 3, WithShards(2)); err == nil {
		t.Fatal("NewSupervised accepted WithShards")
	}
	if _, err := NewCluster("bnb", 3, WithVOQ()); err == nil {
		t.Fatal("NewCluster accepted WithVOQ")
	}
	if _, err := NewCluster("bnb", 3, WithTrace(func(int, []Word) {})); err == nil {
		t.Fatal("NewCluster accepted WithTrace")
	}
	if _, err := NewCluster("bnb", 3, WithBreaker(3)); err == nil {
		t.Fatal("NewCluster accepted WithBreaker")
	}
	if _, err := NewCluster("bnb", 3, WithShards(0)); err == nil {
		t.Fatal("NewCluster accepted WithShards(0)")
	}
	if _, err := NewCluster("nope", 3); err == nil {
		t.Fatal("NewCluster accepted an unknown family")
	}
}

// ExampleNewCluster demonstrates the multi-shard fabric entry point: four
// supervised shards of 2^2 ports joined into one 16-port permutation
// network, grown live by a fifth shard.
func ExampleNewCluster() {
	c, err := NewCluster("bnb", 2, WithShards(4))
	if err != nil {
		panic(err)
	}
	defer c.Close()
	out, err := c.RoutePerm(Perm{15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Name(), c.Inputs(), "inputs; output 0 came from input", out[0].Data)
	if _, err := c.AddShard(context.Background()); err != nil {
		panic(err)
	}
	fmt.Println("grown live to", c.Shards(), "shards,", c.Inputs(), "inputs")
	// Output:
	// cluster(bnb) 16 inputs; output 0 came from input 15
	// grown live to 5 shards, 20 inputs
}

// TestClusterShardOptionsPropagate pins that per-shard serving options
// configure every shard: 3 planes per shard must show up in Stats.
func TestClusterShardOptionsPropagate(t *testing.T) {
	c, err := NewCluster("bnb", 3, WithShards(2), WithPlanes(3), WithMetrics(NewMetrics()))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	st := c.Stats()
	if st.Metrics == nil {
		t.Fatal("cluster stats carry no metrics snapshot")
	}
	for _, sh := range st.Shards {
		if len(sh.Planes) != 3 {
			t.Fatalf("shard %d has %d planes, want 3", sh.Index, len(sh.Planes))
		}
		if len(sh.PlanCaches) != 3 {
			t.Fatalf("shard %d has %d plan caches, want 3", sh.Index, len(sh.PlanCaches))
		}
	}
}
