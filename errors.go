package bnbnet

import "repro/internal/neterr"

// Sentinel errors of the public API. Every layer — core routing, the
// permutation workloads, the fabric simulator, and the serving engine —
// wraps these with %w, so callers classify failures with errors.Is instead
// of string matching:
//
//	if errors.Is(err, bnbnet.ErrNotPermutation) { ... // bad request
//	if errors.Is(err, bnbnet.ErrBadSize)        { ... // wrong word count
//	if errors.Is(err, bnbnet.ErrClosed)         { ... // engine shut down
var (
	// ErrNotPermutation reports destination addresses that do not form a
	// permutation of {0,...,N-1}.
	ErrNotPermutation = neterr.ErrNotPermutation
	// ErrBadSize reports a payload whose length does not match the network
	// or engine port count.
	ErrBadSize = neterr.ErrBadSize
	// ErrClosed reports a request submitted to an engine after Close.
	ErrClosed = neterr.ErrClosed
	// ErrTransient marks a failure expected to heal — injected chaos faults
	// within their window. Engines retry these under WithRetry.
	ErrTransient = neterr.ErrTransient
	// ErrMisrouted reports a verified pass that delivered at least one word
	// to the wrong output (or lost it to a dead link).
	ErrMisrouted = neterr.ErrMisrouted
	// ErrBreakerOpen reports a request refused because the engine's circuit
	// breaker is open and no fallback network is registered.
	ErrBreakerOpen = neterr.ErrBreakerOpen
	// ErrTimeout reports a request abandoned by its WithTimeout deadline.
	ErrTimeout = neterr.ErrTimeout
	// ErrOverloaded reports a request shed at admission: under WithShedding
	// its deadline cannot be met at the current queue depth, or every
	// eligible supervised plane is at its in-flight cap.
	ErrOverloaded = neterr.ErrOverloaded
	// ErrMismatch reports a differential-verification failure: two networks
	// disagreed word-for-word on the same request, or a metamorphic relation
	// between two routes was violated (NewDifferential, Verify).
	ErrMismatch = neterr.ErrMismatch
	// ErrPlanMismatch reports a compiled Plan replayed against a batch whose
	// source addresses differ from the plan's permutation (or a plan from a
	// different network order). Replaying would silently misdeliver, so the
	// batch is refused; compile a plan for the offered permutation instead.
	ErrPlanMismatch = neterr.ErrPlanMismatch
	// ErrDraining reports a request refused at admission while the engine
	// drains: Drain stopped intake, in-flight requests are completing, and
	// Close has not yet happened. Distinct from ErrClosed so operators can
	// tell "steer traffic away, shutdown imminent" from "already gone".
	ErrDraining = neterr.ErrDraining
	// ErrPoisoned reports a request rejected by the supervisor's poison
	// quarantine: the same request fingerprint caused hard routing failures
	// on multiple distinct planes, so the request — not the planes — is to
	// blame. The quarantine entry expires after a TTL.
	ErrPoisoned = neterr.ErrPoisoned
)
