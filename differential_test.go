package bnbnet

import (
	"errors"
	"testing"
)

func TestNewDifferentialAgreement(t *testing.T) {
	bnb, err := New("bnb", 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New("batcher", 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDifferential(bnb, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Name(); got != "diff(bnb,batcher)" {
		t.Errorf("Name() = %q", got)
	}
	for _, p := range []Perm{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1, 0},
		{0, 4, 2, 6, 1, 5, 3, 7}, // bit reversal
	} {
		out, err := d.RoutePerm(p)
		if err != nil {
			t.Fatalf("perm %v: %v", p, err)
		}
		for j, wd := range out {
			if wd.Addr != j {
				t.Fatalf("perm %v: output %d carries address %d", p, j, wd.Addr)
			}
		}
	}
	if d.Checked() != 3 || d.Mismatches() != 0 {
		t.Errorf("checked = %d, mismatches = %d, want 3, 0", d.Checked(), d.Mismatches())
	}
	if d.Unwrap() != bnb {
		t.Error("Unwrap did not return the subject")
	}
	// Cost and Delay pass through the subject's figures.
	if d.Cost() != bnb.Cost() || d.Delay() != bnb.Delay() {
		t.Error("Cost/Delay do not report the subject's figures")
	}
}

func TestNewDifferentialCatchesMismatch(t *testing.T) {
	inner, err := NewBNB(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New("batcher", 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDifferential(brokenNetwork{inner: inner}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RoutePerm(Perm{7, 6, 5, 4, 3, 2, 1, 0}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("sabotaged subject not detected: err = %v", err)
	}
	if d.Mismatches() != 1 {
		t.Errorf("mismatches = %d, want 1", d.Mismatches())
	}
}

func TestNewDifferentialValidation(t *testing.T) {
	bnb, err := New("bnb", 3)
	if err != nil {
		t.Fatal(err)
	}
	small, err := New("bnb", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDifferential(bnb, small); !errors.Is(err, ErrBadSize) {
		t.Errorf("mismatched port counts: err = %v, want ErrBadSize", err)
	}
	if _, err := NewDifferential(nil, bnb); err == nil {
		t.Error("nil subject accepted")
	}
}

func TestVerifyAllFamilies(t *testing.T) {
	for m := 2; m <= 3; m++ {
		report, err := Verify(nil, m, CheckOptions{})
		if err != nil {
			t.Fatalf("m = %d: %v", m, err)
		}
		if !report.OK() {
			t.Fatalf("m = %d: registered families disagree: %v", m, report.Failures)
		}
		if !report.ExhaustiveDone {
			t.Errorf("m = %d: exhaustive pass should auto-enable at N <= 8", m)
		}
		if report.Checked == 0 {
			t.Errorf("m = %d: no checks ran", m)
		}
	}
}

func TestVerifyRejectsUnknownFamily(t *testing.T) {
	if _, err := Verify([]string{"no-such-family"}, 3, CheckOptions{}); err == nil {
		t.Error("unknown family accepted")
	}
}
