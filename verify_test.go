package bnbnet

import (
	"strings"
	"testing"
)

// TestVerifyNetworkPassesAllImplementations runs the public conformance
// battery against every network in the repository.
func TestVerifyNetworkPassesAllImplementations(t *testing.T) {
	for _, n := range allNetworks(t, 3, 0) {
		report, err := VerifyNetwork(n, VerifyOptions{})
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if !report.OK() {
			t.Errorf("%s failed conformance: %v", n.Name(), report.Failures)
		}
		if !report.ExhaustiveDone {
			t.Errorf("%s: exhaustive pass should auto-enable at N=8", n.Name())
		}
		// 40320 exhaustive + 50 random + families + 20 BPC.
		if report.Checked < 40320+50 {
			t.Errorf("%s: only %d permutations checked", n.Name(), report.Checked)
		}
	}
}

func TestVerifyNetworkLargerOrders(t *testing.T) {
	for _, n := range allNetworks(t, 6, 8) {
		report, err := VerifyNetwork(n, VerifyOptions{RandomTrials: 10, BPCTrials: 5, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if report.ExhaustiveDone {
			t.Errorf("%s: exhaustive pass should not run at N=64", n.Name())
		}
		if !report.OK() {
			t.Errorf("%s failed conformance: %v", n.Name(), report.Failures)
		}
	}
}

// brokenNetwork misroutes one specific pair, to prove the battery catches
// real violations.
type brokenNetwork struct{ inner Network }

func (b brokenNetwork) Name() string { return "broken" }

func (b brokenNetwork) Inputs() int { return b.inner.Inputs() }

func (b brokenNetwork) Route(words []Word) ([]Word, error) { return b.inner.Route(words) }

func (b brokenNetwork) RoutePerm(p Perm) ([]Word, error) {
	out, err := b.inner.RoutePerm(p)
	if err != nil {
		return nil, err
	}
	out[0], out[1] = out[1], out[0] // sabotage
	return out, nil
}

func (b brokenNetwork) Cost() Cost { return b.inner.Cost() }

func (b brokenNetwork) Delay() Delay { return b.inner.Delay() }

func TestVerifyNetworkCatchesViolations(t *testing.T) {
	inner, err := NewBNB(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	report, err := VerifyNetwork(brokenNetwork{inner: inner}, VerifyOptions{MaxFailures: 3})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("battery passed a sabotaged network")
	}
	if len(report.Failures) != 3 {
		t.Errorf("failures capped at %d, want 3", len(report.Failures))
	}
	if !strings.Contains(report.Failures[0], "address") {
		t.Errorf("failure message %q does not name the misdelivered address", report.Failures[0])
	}
}

func TestVerifyNetworkValidation(t *testing.T) {
	if _, err := VerifyNetwork(nil, VerifyOptions{}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestVerifyNetworkExhaustiveOverride(t *testing.T) {
	n, err := NewBNB(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := false
	report, err := VerifyNetwork(n, VerifyOptions{Exhaustive: &off, RandomTrials: 5, BPCTrials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.ExhaustiveDone {
		t.Error("exhaustive ran despite explicit override")
	}
	on := true
	report, err = VerifyNetwork(n, VerifyOptions{Exhaustive: &on, RandomTrials: 1, BPCTrials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !report.ExhaustiveDone {
		t.Error("exhaustive skipped despite explicit request")
	}
}
