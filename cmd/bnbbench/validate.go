package main

// Schema validation for BENCH_<m>.json files. CI runs `bnbbench -validate`
// over freshly generated output, so a drifting field name or a nonsensical
// number fails the build instead of silently corrupting the perf trajectory.

import (
	"encoding/json"
	"fmt"
	"io"
)

// requiredFamilies must appear in every report's networks section; they are
// the paper's headline comparison (self-routing BNB vs. Batcher sorting vs.
// centrally-routed Beneš).
var requiredFamilies = []string{"bnb", "batcher", "benes"}

// Validate strictly decodes one report and checks its invariants.
func Validate(r io.Reader) (Report, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("decode: %w", err)
	}
	if err := checkReport(rep); err != nil {
		return Report{}, err
	}
	return rep, nil
}

func checkReport(rep Report) error {
	if rep.Schema != "bnbbench/v6" {
		return fmt.Errorf("schema %q, want bnbbench/v6", rep.Schema)
	}
	if rep.M < 1 || rep.N != 1<<uint(rep.M) {
		return fmt.Errorf("m = %d with n = %d; want n = 2^m", rep.M, rep.N)
	}
	if rep.Go == "" || rep.GOOS == "" || rep.GOARCH == "" || rep.CPUs < 1 {
		return fmt.Errorf("incomplete machine stamp: go=%q goos=%q goarch=%q cpus=%d",
			rep.Go, rep.GOOS, rep.GOARCH, rep.CPUs)
	}
	seen := map[string]bool{}
	for _, nr := range rep.Networks {
		if seen[nr.Family] {
			return fmt.Errorf("family %q listed twice", nr.Family)
		}
		seen[nr.Family] = true
		if nr.Samples < 1 {
			return fmt.Errorf("%s: %d samples", nr.Family, nr.Samples)
		}
		if nr.NsPerOp <= 0 || nr.RoutesPerSec <= 0 {
			return fmt.Errorf("%s: non-positive ns_per_op %v or routes_per_sec %v",
				nr.Family, nr.NsPerOp, nr.RoutesPerSec)
		}
		if nr.P50Ns <= 0 || nr.P99Ns < nr.P50Ns {
			return fmt.Errorf("%s: p50 %d / p99 %d out of order", nr.Family, nr.P50Ns, nr.P99Ns)
		}
		if nr.AllocsPerOp < 0 || nr.PooledNsPerOp < 0 {
			return fmt.Errorf("%s: negative allocs or pooled time", nr.Family)
		}
	}
	for _, want := range requiredFamilies {
		if !seen[want] {
			return fmt.Errorf("required family %q missing (have %v)", want, rep.Networks)
		}
	}
	for _, er := range rep.Engine {
		if er.Workers < 1 || er.Requests < 1 {
			return fmt.Errorf("engine sweep: workers %d, requests %d", er.Workers, er.Requests)
		}
		if er.RoutesPerSec <= 0 || er.P50Ns <= 0 || er.P99Ns < er.P50Ns {
			return fmt.Errorf("engine sweep workers=%d: routes_per_sec %v, p50 %d, p99 %d",
				er.Workers, er.RoutesPerSec, er.P50Ns, er.P99Ns)
		}
		// Sharded-queue accounting: every served request left a shard exactly
		// once, by batch dequeue or by steal, and a steal moves >= 1 request.
		if got := er.BatchedRequests + er.StolenRequests; got != int64(er.Requests) {
			return fmt.Errorf("engine sweep workers=%d: batched %d + stolen %d = %d dequeues, want %d requests",
				er.Workers, er.BatchedRequests, er.StolenRequests, got, er.Requests)
		}
		if er.StolenRequests < er.Steals {
			return fmt.Errorf("engine sweep workers=%d: %d stolen requests across %d steals",
				er.Workers, er.StolenRequests, er.Steals)
		}
		if er.BatchedRequests < er.BatchDequeues {
			return fmt.Errorf("engine sweep workers=%d: %d batched requests across %d batch dequeues",
				er.Workers, er.BatchedRequests, er.BatchDequeues)
		}
		if er.MeanBatch < 0 || er.WorkerParks < 0 {
			return fmt.Errorf("engine sweep workers=%d: negative mean_batch %v or worker_parks %d",
				er.Workers, er.MeanBatch, er.WorkerParks)
		}
	}
	for _, pr := range rep.Planes {
		if pr.Planes < 2 {
			return fmt.Errorf("plane sweep: %d planes", pr.Planes)
		}
		if pr.RoutesPerSec <= 0 || pr.P50Ns <= 0 || pr.P99Ns < pr.P50Ns {
			return fmt.Errorf("plane sweep: routes_per_sec %v, p50 %d, p99 %d",
				pr.RoutesPerSec, pr.P50Ns, pr.P99Ns)
		}
		if pr.Failovers < 0 {
			return fmt.Errorf("plane sweep: negative failovers")
		}
	}
	pl := rep.Plan
	if pl.CompileNsPerOp <= 0 || pl.ReplayNsPerOp <= 0 {
		return fmt.Errorf("plan: non-positive compile %v or replay %v ns/op",
			pl.CompileNsPerOp, pl.ReplayNsPerOp)
	}
	if pl.ReplayNsPerOp >= pl.CompileNsPerOp {
		return fmt.Errorf("plan: replay %v ns/op not below compile %v ns/op — replaying should skip the arbiter pass",
			pl.ReplayNsPerOp, pl.CompileNsPerOp)
	}
	if pl.ReplayAllocsPerOp < 0 || pl.BreakEvenRoutes < 0 {
		return fmt.Errorf("plan: negative replay allocs or break-even")
	}
	if len(pl.HitSweep) < 1 {
		return fmt.Errorf("plan: empty hit sweep")
	}
	for _, hp := range pl.HitSweep {
		if hp.RepeatRatio < 0 || hp.RepeatRatio > 1 || hp.HitRatio < 0 || hp.HitRatio > 1 {
			return fmt.Errorf("plan sweep: ratios out of [0,1]: repeat %v, hit %v", hp.RepeatRatio, hp.HitRatio)
		}
		if hp.RoutesPerSec <= 0 {
			return fmt.Errorf("plan sweep repeat=%v: non-positive routes_per_sec %v", hp.RepeatRatio, hp.RoutesPerSec)
		}
	}
	rc := rep.Reconfig
	if rc.Planes < 2 {
		return fmt.Errorf("reconfig: %d planes", rc.Planes)
	}
	if rc.RolloutNs <= 0 || rc.DrainNs <= 0 {
		return fmt.Errorf("reconfig: non-positive rollout %d ns or drain %d ns", rc.RolloutNs, rc.DrainNs)
	}
	if rc.SwapBlackoutNs <= 0 || rc.SwapBlackoutNs > rc.RolloutNs {
		return fmt.Errorf("reconfig: swap blackout %d ns outside (0, rollout %d ns]", rc.SwapBlackoutNs, rc.RolloutNs)
	}
	if rc.PlanWarms < 1 {
		return fmt.Errorf("reconfig: %d plan warms — the rollout must carry the hot set over", rc.PlanWarms)
	}
	if rc.WarmHitRatio <= 0 || rc.WarmHitRatio > 1 {
		return fmt.Errorf("reconfig: warm hit ratio %v outside (0, 1]", rc.WarmHitRatio)
	}
	tl := rep.Tail
	if tl.Planes < 2 {
		return fmt.Errorf("tail: %d planes", tl.Planes)
	}
	if tl.SlowDelayNs <= 0 || tl.SlowRate <= 0 || tl.SlowRate > 1 {
		return fmt.Errorf("tail: slow delay %d ns, rate %v", tl.SlowDelayNs, tl.SlowRate)
	}
	if tl.HealthyP99Ns <= 0 || tl.UnhedgedP99Ns <= 0 || tl.HedgedP99Ns <= 0 {
		return fmt.Errorf("tail: non-positive p99 (healthy %d, unhedged %d, hedged %d)",
			tl.HealthyP99Ns, tl.UnhedgedP99Ns, tl.HedgedP99Ns)
	}
	if tl.HedgedP99Ns > tl.UnhedgedP99Ns {
		return fmt.Errorf("tail: hedged p99 %d ns above unhedged %d ns — hedging must cut the slow-plane tail",
			tl.HedgedP99Ns, tl.UnhedgedP99Ns)
	}
	if tl.Hedges < tl.HedgeWins || tl.HedgeWins < 0 {
		return fmt.Errorf("tail: hedge wins %d exceed hedges %d", tl.HedgeWins, tl.Hedges)
	}
	if tl.HedgeFireRate < 0 || tl.HedgeFireRate > 1 {
		return fmt.Errorf("tail: hedge fire rate %v outside [0, 1]", tl.HedgeFireRate)
	}
	if len(tl.Classes) != 3 {
		return fmt.Errorf("tail: %d class points, want 3", len(tl.Classes))
	}
	classesSeen := map[string]bool{}
	for _, cp := range tl.Classes {
		if cp.Class == "" || classesSeen[cp.Class] {
			return fmt.Errorf("tail: empty or duplicate class %q", cp.Class)
		}
		classesSeen[cp.Class] = true
		if cp.Submitted < 1 {
			return fmt.Errorf("tail class %s: %d submitted", cp.Class, cp.Submitted)
		}
		if cp.Sheds < 0 || cp.Sheds > cp.Submitted {
			return fmt.Errorf("tail class %s: %d sheds of %d submitted", cp.Class, cp.Sheds, cp.Submitted)
		}
		if cp.ShedRate < 0 || cp.ShedRate > 1 {
			return fmt.Errorf("tail class %s: shed rate %v outside [0, 1]", cp.Class, cp.ShedRate)
		}
	}
	if tl.Classes[0].ShedRate < tl.Classes[2].ShedRate {
		return fmt.Errorf("tail: background shed rate %v below critical %v — the QoS order is inverted",
			tl.Classes[0].ShedRate, tl.Classes[2].ShedRate)
	}
	cl := rep.Cluster
	if cl.ShardOrder < 1 {
		return fmt.Errorf("cluster: shard order %d", cl.ShardOrder)
	}
	if len(cl.Sweep) < 2 {
		return fmt.Errorf("cluster: %d sweep points, want >= 2 shard counts", len(cl.Sweep))
	}
	prevShards := 0
	for _, cp := range cl.Sweep {
		if cp.Shards <= prevShards {
			return fmt.Errorf("cluster sweep: shard counts not strictly increasing at %d", cp.Shards)
		}
		prevShards = cp.Shards
		if cp.Inputs != cp.Shards<<uint(cl.ShardOrder) {
			return fmt.Errorf("cluster sweep shards=%d: %d inputs, want %d aggregate ports",
				cp.Shards, cp.Inputs, cp.Shards<<uint(cl.ShardOrder))
		}
		if cp.Requests < 1 || cp.NsPerOp <= 0 || cp.RoutesPerSec <= 0 || cp.WordsPerSec <= 0 {
			return fmt.Errorf("cluster sweep shards=%d: non-positive figures (requests %d, ns/op %v, routes/s %v, words/s %v)",
				cp.Shards, cp.Requests, cp.NsPerOp, cp.RoutesPerSec, cp.WordsPerSec)
		}
		if cp.P50Ns <= 0 || cp.P99Ns < cp.P50Ns {
			return fmt.Errorf("cluster sweep shards=%d: p50 %d / p99 %d out of order", cp.Shards, cp.P50Ns, cp.P99Ns)
		}
		if cp.DecomposeNsPerOp <= 0 || cp.ReplayNsPerOp <= 0 {
			return fmt.Errorf("cluster sweep shards=%d: non-positive decompose %v or replay %v ns/op",
				cp.Shards, cp.DecomposeNsPerOp, cp.ReplayNsPerOp)
		}
		// The matching stage is pure bookkeeping — linear-ish edge coloring
		// with no shard round-trips — so decomposing must undercut the full
		// end-to-end route it is one stage of.
		if cp.DecomposeNsPerOp >= cp.NsPerOp {
			return fmt.Errorf("cluster sweep shards=%d: decompose %v ns/op not below the end-to-end route %v ns/op",
				cp.Shards, cp.DecomposeNsPerOp, cp.NsPerOp)
		}
	}
	return nil
}

// checkScaling asserts the engine sweep actually scales: the highest worker
// count's throughput must reach minScale times the single-worker point, and
// its p99 must stay within 4x its p50 (the tail must not pay for the
// parallelism). Opt-in via -minscale because the assertion only makes sense
// on a multi-core machine — a single-CPU container serializes the workers
// and would fail it vacuously.
func checkScaling(rep Report, minScale float64) error {
	var single, best *EngineResult
	for i := range rep.Engine {
		er := &rep.Engine[i]
		if er.Workers == 1 {
			single = er
		}
		if best == nil || er.Workers > best.Workers {
			best = er
		}
	}
	if single == nil || best == nil || best.Workers <= 1 {
		return fmt.Errorf("scaling check needs a 1-worker and a multi-worker engine point (have %d points)", len(rep.Engine))
	}
	if best.RoutesPerSec < minScale*single.RoutesPerSec {
		return fmt.Errorf("engine at %d workers reaches %.0f routes/sec, below %.2fx the 1-worker %.0f routes/sec",
			best.Workers, best.RoutesPerSec, minScale, single.RoutesPerSec)
	}
	if best.P99Ns > 4*best.P50Ns {
		return fmt.Errorf("engine at %d workers: p99 %d ns above 4x p50 %d ns",
			best.Workers, best.P99Ns, best.P50Ns)
	}
	return nil
}
