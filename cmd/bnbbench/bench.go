package main

// The measurement core of bnbbench. runBench is a pure function of its
// config — seeded workloads, no global state — so the test suite drives it
// in-process and the CLI just wires flags to it.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	bnbnet "repro"
)

// Report is the machine-readable result of one bnbbench run at one order —
// the BENCH_<m>.json payload. Schema "bnbbench/v6" (v2 added the compiled
// route-plan section; v3 the hitless-reconfiguration profile; v4 the
// tail-tolerance profile; v5 the sharded-queue engine counters; v6 the
// multi-shard cluster fabric sweep); Validate checks an emitted file
// against it.
type Report struct {
	Schema string `json:"schema"`
	M      int    `json:"m"`
	N      int    `json:"n"`
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Quick  bool   `json:"quick"`

	Networks []NetworkResult `json:"networks"`
	Engine   []EngineResult  `json:"engine"`
	Planes   []PlaneResult   `json:"planes"`
	Plan     PlanResultV2    `json:"plan"`
	Reconfig ReconfigResult  `json:"reconfig"`
	Tail     TailResult      `json:"tail"`
	Cluster  ClusterResult   `json:"cluster"`
}

// ClusterResult profiles the multi-shard cluster fabric added by
// bnbbench/v6: a shard-count sweep at fixed shard order m, so the
// aggregate port count S·2^m grows with the fleet. Each point measures the
// end-to-end route latency and batched aggregate throughput of the whole
// fabric, plus the two cluster-specific costs: the matching stage
// (Compile — the Kőnig edge coloring that decomposes one aggregate
// permutation into inter-shard matchings and per-shard locals) and the
// replay of a compiled assignment.
type ClusterResult struct {
	ShardOrder int            `json:"shard_order"`
	Sweep      []ClusterPoint `json:"sweep"`
}

// ClusterPoint is one shard count's profile in the cluster sweep.
type ClusterPoint struct {
	Shards   int `json:"shards"`
	Inputs   int `json:"inputs"`
	Requests int `json:"requests"`
	// End-to-end closed-loop route latency through the aggregate fabric.
	NsPerOp float64 `json:"ns_per_op"`
	P50Ns   int64   `json:"p50_ns"`
	P99Ns   int64   `json:"p99_ns"`
	// Batched aggregate throughput; words/sec = routes/sec x inputs.
	RoutesPerSec float64 `json:"routes_per_sec"`
	WordsPerSec  float64 `json:"words_per_sec"`
	// DecomposeNsPerOp is the matching-stage latency (Cluster.Compile).
	DecomposeNsPerOp float64 `json:"decompose_ns_per_op"`
	// ReplayNsPerOp replays the compiled assignment through the shards.
	ReplayNsPerOp float64 `json:"replay_ns_per_op"`
}

// TailResult profiles the tail-tolerant serving path added by bnbbench/v4:
// the request p99 of a supervised stack with one plane under slow chaos
// (latency faults that stall route passes), measured healthy, unhedged, and
// with auto hedging racing the tail — plus the hedge fire rate — and the
// per-class shed rates of a deliberately saturated one-worker engine, which
// pin the QoS contract: background sheds before critical.
type TailResult struct {
	Planes      int     `json:"planes"`
	SlowDelayNs int64   `json:"slow_delay_ns"`
	SlowRate    float64 `json:"slow_rate"`
	// The p99 of the same request stream under the three serving modes.
	HealthyP99Ns  int64 `json:"healthy_p99_ns"`
	UnhedgedP99Ns int64 `json:"unhedged_p99_ns"`
	HedgedP99Ns   int64 `json:"hedged_p99_ns"`
	// Hedge counters of the hedged run.
	Hedges        int64   `json:"hedges"`
	HedgeWins     int64   `json:"hedge_wins"`
	HedgeFireRate float64 `json:"hedge_fire_rate"`
	// Classes is the saturation profile, one entry per admission class in
	// priority order (background, standard, critical).
	Classes []ClassPoint `json:"classes"`
}

// ClassPoint is one admission class's outcome under saturation.
type ClassPoint struct {
	Class     string  `json:"class"`
	Submitted int64   `json:"submitted"`
	Sheds     int64   `json:"sheds"`
	ShedRate  float64 `json:"shed_rate"`
}

// ReconfigResult profiles the hitless live-rollout path added by
// bnbbench/v3: the wall time of one full Reconfigure of a two-plane
// supervised stack under continuous traffic, the swap blackout (the longest
// gap between successive successful routes while the rollout runs — the
// availability cost of the rolling swap), the warm-hit ratio (the fraction
// of the first post-rollout requests served from the pre-warmed plan
// caches), and the latency of the final drain on the idle engine.
type ReconfigResult struct {
	Planes         int     `json:"planes"`
	RolloutNs      int64   `json:"rollout_ns"`
	SwapBlackoutNs int64   `json:"swap_blackout_ns"`
	DrainNs        int64   `json:"drain_ns"`
	PlanWarms      int64   `json:"plan_warms"`
	WarmHitRatio   float64 `json:"warm_hit_ratio"`
}

// NetworkResult is the single-threaded route latency profile of one family.
type NetworkResult struct {
	Family       string  `json:"family"`
	Samples      int     `json:"samples"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	RoutesPerSec float64 `json:"routes_per_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	// PooledNsPerOp is the zero-allocation RouteInto path, present only for
	// families offering the BulkRouter surface (0 otherwise).
	PooledNsPerOp float64 `json:"pooled_ns_per_op,omitempty"`
}

// EngineResult is one point of the serving-engine throughput sweep. The
// v5 counters expose the sharded-queue internals: how many shard dequeues
// the run took (and how many requests each moved on average), how much work
// migrated between shards via stealing, and how often workers parked. They
// obey two invariants the validator enforces: every served request was
// either batch-dequeued or stolen (batched + stolen == requests), and a
// steal moves at least one request (stolen >= steals).
type EngineResult struct {
	Workers      int     `json:"workers"`
	Requests     int     `json:"requests"`
	RoutesPerSec float64 `json:"routes_per_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`

	BatchDequeues   int64   `json:"batch_dequeues"`
	BatchedRequests int64   `json:"batched_requests"`
	MeanBatch       float64 `json:"mean_batch"`
	Steals          int64   `json:"steals"`
	StolenRequests  int64   `json:"stolen_requests"`
	WorkerParks     int64   `json:"worker_parks"`
}

// PlanResultV2 profiles the compiled route-plan path added by bnbbench/v2:
// the one-off compile cost (a full live arbiter pass plus recording), the
// steady-state replay latency and allocations, the break-even repeat count
// where compiling amortizes over live routing, and a cache sweep showing how
// the engine's lock-free plan cache converts workload repetition into hits.
type PlanResultV2 struct {
	CompileNsPerOp    float64 `json:"compile_ns_per_op"`
	ReplayNsPerOp     float64 `json:"replay_ns_per_op"`
	ReplayAllocsPerOp float64 `json:"replay_allocs_per_op"`
	// BreakEvenRoutes is compile / (live - replay): the number of repeats of
	// one permutation after which compile-then-replay beats routing each
	// batch live (0 when replay does not undercut the live path).
	BreakEvenRoutes float64 `json:"break_even_routes"`
	// HitSweep drives the cached engine with workloads of increasing
	// repetition (50%, 95%, 100% repeated permutations).
	HitSweep []HitPoint `json:"hit_sweep"`
}

// HitPoint is one cache sweep point: a workload where repeat_ratio of the
// requests reuse a permutation from a small working set, and the measured
// cache hit ratio plus throughput the cached engine achieved on it.
type HitPoint struct {
	RepeatRatio  float64 `json:"repeat_ratio"`
	HitRatio     float64 `json:"hit_ratio"`
	RoutesPerSec float64 `json:"routes_per_sec"`
}

// PlaneResult is one point of the supervised multi-plane sweep.
type PlaneResult struct {
	Planes       int     `json:"planes"`
	Workers      int     `json:"workers"`
	Requests     int     `json:"requests"`
	RoutesPerSec float64 `json:"routes_per_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	Failovers    int64   `json:"failovers"`
}

// benchConfig sizes one run. The zero value is not useful; build with
// defaultConfig.
type benchConfig struct {
	m        int
	families []string
	workers  []int
	quick    bool
	seed     int64

	routeSamples   int // per-family latency samples
	engineRequests int // per sweep point
}

func defaultConfig(m int, families []string, workers []int, quick bool) benchConfig {
	cfg := benchConfig{
		m:              m,
		families:       families,
		workers:        workers,
		quick:          quick,
		seed:           1991, // the paper's year; fixed so runs are comparable
		routeSamples:   1500,
		engineRequests: 4000,
	}
	if quick {
		cfg.routeSamples = 300
		cfg.engineRequests = 800
	}
	return cfg
}

// runBench measures every configured family and sweep at order cfg.m.
func runBench(cfg benchConfig) (Report, error) {
	rep := Report{
		Schema: "bnbbench/v6",
		M:      cfg.m,
		N:      1 << uint(cfg.m),
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Quick:  cfg.quick,
	}
	for _, family := range cfg.families {
		nr, err := benchNetwork(family, cfg)
		if err != nil {
			return Report{}, err
		}
		rep.Networks = append(rep.Networks, nr)
	}
	for _, w := range cfg.workers {
		er, err := benchEngine(w, cfg)
		if err != nil {
			return Report{}, err
		}
		rep.Engine = append(rep.Engine, er)
	}
	pr, err := benchPlanes(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Planes = append(rep.Planes, pr)
	plan, err := benchPlan(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Plan = plan
	rc, err := benchReconfig(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Reconfig = rc
	tl, err := benchTail(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Tail = tl
	cr, err := benchCluster(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Cluster = cr
	return rep, nil
}

// benchCluster runs the v6 shard-count sweep: for each fleet size the
// aggregate fabric of S·2^m ports serves a closed-loop latency probe, a
// batched throughput drive, and the compile/replay pair isolating the
// matching-stage cost from the steady-state path.
func benchCluster(cfg benchConfig) (ClusterResult, error) {
	res := ClusterResult{ShardOrder: cfg.m}
	sweep := []int{2, 4, 8}
	if cfg.quick {
		sweep = []int{2, 4}
	}
	requests := cfg.engineRequests / 4
	samples := cfg.routeSamples / 4
	const compileSamples = 64
	rng := rand.New(rand.NewSource(cfg.seed))
	for _, shards := range sweep {
		point, err := func() (ClusterPoint, error) {
			cl, err := bnbnet.NewCluster("bnb", cfg.m, bnbnet.WithShards(shards))
			if err != nil {
				return ClusterPoint{}, err
			}
			defer cl.Close()
			n := cl.Inputs()
			point := ClusterPoint{Shards: shards, Inputs: n, Requests: requests}

			lat := make([]int64, samples)
			for i := range lat {
				p := bnbnet.RandomPerm(n, rng)
				start := time.Now()
				if _, err := cl.RoutePerm(p); err != nil {
					return ClusterPoint{}, fmt.Errorf("cluster %d shards: %w", shards, err)
				}
				lat[i] = time.Since(start).Nanoseconds()
			}
			mean, p50, p99 := summarize(lat)
			point.NsPerOp, point.P50Ns, point.P99Ns = mean, p50, p99

			elapsed, err := driveBatches(cl.RoutePermBatch, n, requests, cfg.seed)
			if err != nil {
				return ClusterPoint{}, fmt.Errorf("cluster %d shards: %w", shards, err)
			}
			point.RoutesPerSec = float64(requests) / elapsed.Seconds()
			point.WordsPerSec = point.RoutesPerSec * float64(n)

			// The matching stage in isolation: Compile decomposes an aggregate
			// permutation without touching a shard.
			var plan *bnbnet.Plan
			var planPerm bnbnet.Perm
			comp := make([]int64, compileSamples)
			for i := range comp {
				p := bnbnet.RandomPerm(n, rng)
				start := time.Now()
				pl, err := cl.Compile(p)
				if err != nil {
					return ClusterPoint{}, fmt.Errorf("cluster %d shards compile: %w", shards, err)
				}
				comp[i] = time.Since(start).Nanoseconds()
				plan, planPerm = pl, p
			}
			point.DecomposeNsPerOp, _, _ = summarize(comp)

			src := make([]bnbnet.Word, n)
			dst := make([]bnbnet.Word, n)
			for i, d := range planPerm {
				src[i] = bnbnet.Word{Addr: d, Data: uint64(i)}
			}
			rep := make([]int64, compileSamples)
			for i := range rep {
				start := time.Now()
				if err := cl.Replay(plan, dst, src); err != nil {
					return ClusterPoint{}, fmt.Errorf("cluster %d shards replay: %w", shards, err)
				}
				rep[i] = time.Since(start).Nanoseconds()
			}
			point.ReplayNsPerOp, _, _ = summarize(rep)
			return point, nil
		}()
		if err != nil {
			return ClusterResult{}, err
		}
		res.Sweep = append(res.Sweep, point)
	}
	return res, nil
}

// benchTail measures the tail-tolerance profile: the same seeded request
// stream over a three-plane supervised stack, first fully healthy, then with
// plane 0 under slow chaos (stalled route passes) and no hedging — the raw
// tail — then under the same chaos with auto hedging racing it. A final
// saturation run drives a one-worker shedding engine with all three
// admission classes interleaved and reads the per-class shed rates.
func benchTail(cfg benchConfig) (TailResult, error) {
	// The stall must dwarf the platform's timer granularity: both the
	// injected sleep and the hedge timer round up to the scheduler's tick
	// (over a millisecond on some kernels), so a sub-tick stall would be
	// indistinguishable from a hedged recovery. At 20ms the unhedged tail
	// sits an order of magnitude above the worst hedge-timer overshoot.
	const (
		planes    = 3
		slowDelay = 20 * time.Millisecond
		slowRate  = 0.1
	)
	slowPlan := &bnbnet.FaultPlan{SlowRate: slowRate, SlowDelay: slowDelay, SlowHeal: 1, Seed: cfg.seed}
	// The tail is a per-request property, so the driver is closed-loop with
	// one request in flight: the engine's latency clock starts at submit, and
	// any queueing ahead of a request would fold scheduling delay into the
	// percentiles and bury the stall signal. The floor keeps enough requests
	// that the ~slowRate/planes strike fraction reliably lands above P99.
	tailRequests := cfg.engineRequests
	if tailRequests < 400 {
		tailRequests = 400
	}
	p99 := func(opts ...bnbnet.Option) (int64, int64, int64, error) {
		sink := bnbnet.NewMetrics()
		all := append([]bnbnet.Option{
			bnbnet.WithPlanes(planes), bnbnet.WithWorkers(4), bnbnet.WithMetrics(sink),
		}, opts...)
		sup, err := bnbnet.NewSupervised("bnb", cfg.m, all...)
		if err != nil {
			return 0, 0, 0, err
		}
		rng := rand.New(rand.NewSource(cfg.seed))
		n := sup.Inputs()
		for i := 0; i < tailRequests; i++ {
			_, errs := sup.RoutePermBatch([]bnbnet.Perm{bnbnet.RandomPerm(n, rng)})
			if errs[0] != nil {
				sup.Close() //nolint:errcheck // the route error is the one to report
				return 0, 0, 0, errs[0]
			}
		}
		hedges, wins := sup.Hedges(), sup.HedgeWins()
		if err := sup.Close(); err != nil {
			return 0, 0, 0, err
		}
		return sink.Snapshot().P99.Nanoseconds(), hedges, wins, nil
	}
	healthy, _, _, err := p99()
	if err != nil {
		return TailResult{}, fmt.Errorf("tail healthy: %w", err)
	}
	unhedged, _, _, err := p99(bnbnet.WithPlaneFaults(0, slowPlan))
	if err != nil {
		return TailResult{}, fmt.Errorf("tail unhedged: %w", err)
	}
	hedged, hedges, wins, err := p99(bnbnet.WithPlaneFaults(0, slowPlan), bnbnet.WithHedgeAuto())
	if err != nil {
		return TailResult{}, fmt.Errorf("tail hedged: %w", err)
	}
	res := TailResult{
		Planes:        planes,
		SlowDelayNs:   slowDelay.Nanoseconds(),
		SlowRate:      slowRate,
		HealthyP99Ns:  healthy,
		UnhedgedP99Ns: unhedged,
		HedgedP99Ns:   hedged,
		Hedges:        hedges,
		HedgeWins:     wins,
		HedgeFireRate: float64(hedges) / float64(tailRequests),
	}
	classes, err := benchClasses(cfg)
	if err != nil {
		return TailResult{}, fmt.Errorf("tail classes: %w", err)
	}
	res.Classes = classes
	return res, nil
}

// benchClasses saturates a one-worker shedding engine with an equal mix of
// the three admission classes — a deadline far below the queue's drain time,
// so the shedder must choose — and reports each class's shed rate. The QoS
// contract under test: background sheds at least as hard as critical.
func benchClasses(cfg benchConfig) ([]ClassPoint, error) {
	net, err := bnbnet.New("bnb", cfg.m)
	if err != nil {
		return nil, err
	}
	sink := bnbnet.NewMetrics()
	eng, err := bnbnet.NewEngine(net,
		bnbnet.WithWorkers(1), bnbnet.WithQueue(64),
		bnbnet.WithShedding(), bnbnet.WithTimeout(100*time.Microsecond),
		bnbnet.WithMetrics(sink))
	if err != nil {
		return nil, err
	}
	n := net.Inputs()
	batches := workload(n, 64, cfg.seed)
	// Warm the service-time EWMA so the deadline shedder has an estimate.
	for _, b := range batches[:8] {
		if t, err := eng.Submit(nil, b); err == nil {
			t.Wait() //nolint:errcheck // warm-up; expiries are expected under the tight deadline
		}
	}
	order := []bnbnet.Class{bnbnet.ClassBackground, bnbnet.ClassStandard, bnbnet.ClassCritical}
	var wg sync.WaitGroup
	workers := 8
	perWorker := cfg.engineRequests / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Open loop: fire the whole allotment before waiting on any
			// ticket, so the class queues genuinely fill. A full background
			// queue sheds at the door while critical exerts backpressure —
			// the structural half of the QoS contract — and the deadline
			// shedder sees a depth estimate well past the deadline.
			tickets := make([]*bnbnet.Ticket, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				class := order[(w+i)%len(order)]
				t, err := eng.SubmitClass(context.Background(), class, nil, batches[(w*perWorker+i)%len(batches)])
				if err != nil {
					continue // shed: counted by the sink
				}
				tickets = append(tickets, t)
			}
			for _, t := range tickets {
				t.Wait() //nolint:errcheck // expiries are the saturation signal, not a failure
			}
		}(w)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		return nil, err
	}
	snap := sink.Snapshot()
	out := make([]ClassPoint, len(order))
	for i, class := range order {
		sub, sheds := snap.ClassSubmitted[int(class)], snap.ClassSheds[int(class)]
		rate := 0.0
		if sub > 0 {
			rate = float64(sheds) / float64(sub)
		}
		out[i] = ClassPoint{Class: class.String(), Submitted: sub, Sheds: sheds, ShedRate: rate}
	}
	return out, nil
}

// benchReconfig measures the hitless-rollout path: a two-plane supervised
// stack serves a hot working set (filling both plan caches), then the whole
// fleet is rolled onto fresh planes with ReconfigWarmPlans while a probe
// loop keeps routing — the longest gap between successive completions is
// the swap blackout. The first post-rollout requests measure how much of
// the working set the pre-warm carried over, and a final Drain on the idle
// engine gives the drain latency. The background health prober is parked
// (the rolling swap verifies replacements synchronously) so the cache
// counters reflect only this workload.
func benchReconfig(cfg benchConfig) (ReconfigResult, error) {
	const planes = 2
	sink := bnbnet.NewMetrics()
	sup, err := bnbnet.NewSupervised("bnb", cfg.m,
		bnbnet.WithPlanes(planes), bnbnet.WithWorkers(2),
		bnbnet.WithPlanCache(256),
		bnbnet.WithHealthInterval(time.Hour),
		bnbnet.WithMetrics(sink))
	if err != nil {
		return ReconfigResult{}, err
	}
	n := sup.Inputs()
	rng := rand.New(rand.NewSource(cfg.seed))
	hot := make([]bnbnet.Perm, 8)
	for i := range hot {
		hot[i] = bnbnet.RandomPerm(n, rng)
	}
	routeOne := func(p bnbnet.Perm) error {
		_, errs := sup.RoutePermBatch([]bnbnet.Perm{p})
		return errs[0]
	}
	// Fill both plan caches with the working set: enough sequential passes
	// that the rotor lands every hot permutation on every plane.
	fill := 8
	if cfg.quick {
		fill = 4
	}
	for r := 0; r < fill; r++ {
		for _, p := range hot {
			if err := routeOne(p); err != nil {
				return ReconfigResult{}, fmt.Errorf("cache fill: %w", err)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// One full rollout under continuous probing: every gap between
	// consecutive successful routes is a candidate blackout window.
	rolloutDone := make(chan error, 1)
	start := time.Now()
	go func() {
		rolloutDone <- sup.Reconfigure(ctx, bnbnet.ReconfigWarmPlans(len(hot)))
	}()
	var blackout time.Duration
	last := time.Now()
	for i := 0; ; i++ {
		// Yield between probes: on a single-P runtime the Submit/Wait channel
		// ping-pong would otherwise keep the rollout goroutine parked in the
		// run queue indefinitely, and the probes would measure a stall they
		// themselves caused.
		runtime.Gosched()
		if err := routeOne(hot[i%len(hot)]); err != nil {
			return ReconfigResult{}, fmt.Errorf("probe during rollout: %w", err)
		}
		now := time.Now()
		if gap := now.Sub(last); gap > blackout {
			blackout = gap
		}
		last = now
		select {
		case err := <-rolloutDone:
			if err != nil {
				return ReconfigResult{}, fmt.Errorf("reconfigure: %w", err)
			}
		default:
			continue
		}
		break
	}
	rollout := time.Since(start)

	// Warm-hit ratio: the share of the first post-rollout working-set
	// requests the pre-warmed caches serve without a compile.
	var hitsBefore int64
	for _, cs := range sup.Stats().PlanCaches {
		hitsBefore += cs.Hits
	}
	post := 8 * len(hot)
	for i := 0; i < post; i++ {
		if err := routeOne(hot[i%len(hot)]); err != nil {
			return ReconfigResult{}, fmt.Errorf("post-rollout: %w", err)
		}
	}
	var hitsAfter int64
	for _, cs := range sup.Stats().PlanCaches {
		hitsAfter += cs.Hits
	}

	drainStart := time.Now()
	if err := sup.Drain(ctx); err != nil {
		return ReconfigResult{}, fmt.Errorf("drain: %w", err)
	}
	drain := time.Since(drainStart)
	warms := sink.Snapshot().PlanWarms
	if err := sup.Close(); err != nil {
		return ReconfigResult{}, err
	}
	return ReconfigResult{
		Planes:         planes,
		RolloutNs:      rollout.Nanoseconds(),
		SwapBlackoutNs: blackout.Nanoseconds(),
		DrainNs:        drain.Nanoseconds(),
		PlanWarms:      warms,
		WarmHitRatio:   float64(hitsAfter-hitsBefore) / float64(post),
	}, nil
}

// benchPlan measures the compiled-plan path: compile cost across the sample
// permutations, steady-state replay latency and allocations on one plan, and
// the cached engine's hit ratio and throughput as workload repetition grows.
func benchPlan(cfg benchConfig) (PlanResultV2, error) {
	net, err := bnbnet.New("bnb", cfg.m)
	if err != nil {
		return PlanResultV2{}, err
	}
	pr, ok := bnbnet.AsPlanRouter(net)
	if !ok {
		return PlanResultV2{}, fmt.Errorf("bnb offers no PlanRouter surface")
	}
	n := net.Inputs()
	rng := rand.New(rand.NewSource(cfg.seed))
	perms := make([]bnbnet.Perm, cfg.routeSamples)
	for i := range perms {
		perms[i] = bnbnet.RandomPerm(n, rng)
	}
	// Compile cost: one live arbiter pass plus switch recording per perm.
	if _, err := pr.Compile(perms[0]); err != nil { // warm-up
		return PlanResultV2{}, err
	}
	compile := make([]int64, len(perms))
	for i, p := range perms {
		start := time.Now()
		if _, err := pr.Compile(p); err != nil {
			return PlanResultV2{}, fmt.Errorf("compile: %w", err)
		}
		compile[i] = time.Since(start).Nanoseconds()
	}
	compileNs, _, _ := summarize(compile)

	// Replay: pure wire-following over one compiled plan.
	pl, err := pr.Compile(perms[0])
	if err != nil {
		return PlanResultV2{}, err
	}
	src := make([]bnbnet.Word, n)
	for i, d := range perms[0] {
		src[i] = bnbnet.Word{Addr: d, Data: uint64(i)}
	}
	dst := make([]bnbnet.Word, n)
	if err := pr.Replay(pl, dst, src); err != nil { // warm-up
		return PlanResultV2{}, err
	}
	replay := make([]int64, cfg.routeSamples)
	for i := range replay {
		start := time.Now()
		if err := pr.Replay(pl, dst, src); err != nil {
			return PlanResultV2{}, fmt.Errorf("replay: %w", err)
		}
		replay[i] = time.Since(start).Nanoseconds()
	}
	replayNs, _, _ := summarize(replay)
	res := PlanResultV2{
		CompileNsPerOp:    compileNs,
		ReplayNsPerOp:     replayNs,
		ReplayAllocsPerOp: allocsPerOp(64, func() { pr.Replay(pl, dst, src) }), //nolint:errcheck // measured above
	}

	// Break-even against the live pooled path: after this many repeats of
	// one permutation, compiling first is the cheaper strategy.
	if br, ok := bnbnet.AsBulkRouter(net); ok {
		live := make([]int64, cfg.routeSamples)
		for i := range live {
			start := time.Now()
			if err := br.RouteInto(dst, src); err != nil {
				return PlanResultV2{}, fmt.Errorf("live: %w", err)
			}
			live[i] = time.Since(start).Nanoseconds()
		}
		liveNs, _, _ := summarize(live)
		if liveNs > replayNs {
			res.BreakEvenRoutes = compileNs / (liveNs - replayNs)
		}
	}

	// Cache sweep: the cached engine on workloads of rising repetition.
	for _, repeat := range []float64{0.50, 0.95, 1.00} {
		hp, err := benchPlanCache(cfg, repeat)
		if err != nil {
			return PlanResultV2{}, err
		}
		res.HitSweep = append(res.HitSweep, hp)
	}
	return res, nil
}

// benchPlanCache drives a plan-cached engine with a workload in which
// `repeat` of the requests reuse one of 8 hot permutations and the rest are
// fresh, then reads the hit ratio off the cache counters.
func benchPlanCache(cfg benchConfig, repeat float64) (HitPoint, error) {
	net, err := bnbnet.New("bnb", cfg.m)
	if err != nil {
		return HitPoint{}, err
	}
	workers := cfg.workers[len(cfg.workers)-1]
	eng, err := bnbnet.NewEngine(net, bnbnet.WithWorkers(workers), bnbnet.WithPlanCache(256))
	if err != nil {
		return HitPoint{}, err
	}
	n := net.Inputs()
	rng := rand.New(rand.NewSource(cfg.seed))
	hot := make([]bnbnet.Perm, 8)
	for i := range hot {
		hot[i] = bnbnet.RandomPerm(n, rng)
	}
	elapsed, err := driveBatches(func(ps []bnbnet.Perm) ([][]bnbnet.Word, []error) {
		for i := range ps {
			if rng.Float64() < repeat {
				ps[i] = hot[rng.Intn(len(hot))]
			}
		}
		return eng.RoutePermBatch(ps)
	}, n, cfg.engineRequests, cfg.seed+1)
	stats := eng.Stats().PlanCaches[0]
	cerr := eng.Close()
	if err != nil {
		return HitPoint{}, err
	}
	if cerr != nil {
		return HitPoint{}, cerr
	}
	return HitPoint{
		RepeatRatio:  repeat,
		HitRatio:     stats.HitRatio(),
		RoutesPerSec: float64(cfg.engineRequests) / elapsed.Seconds(),
	}, nil
}

// workload pre-generates the sample permutations as word batches so
// generation cost stays out of the timed region.
func workload(n, samples int, seed int64) [][]bnbnet.Word {
	rng := rand.New(rand.NewSource(seed))
	batches := make([][]bnbnet.Word, samples)
	for i := range batches {
		p := bnbnet.RandomPerm(n, rng)
		words := make([]bnbnet.Word, n)
		for j, d := range p {
			words[j] = bnbnet.Word{Addr: d, Data: uint64(j)}
		}
		batches[i] = words
	}
	return batches
}

// summarize turns raw per-op nanosecond samples into the latency triple.
func summarize(samples []int64) (mean float64, p50, p99 int64) {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, s := range sorted {
		sum += s
	}
	mean = float64(sum) / float64(len(sorted))
	pick := func(q float64) int64 {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	return mean, pick(0.50), pick(0.99)
}

// allocsPerOp measures the steady-state heap allocations of fn, the
// ReadMemStats-delta analogue of testing.AllocsPerRun.
func allocsPerOp(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm pools and lazy initialization outside the measured window
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

func benchNetwork(family string, cfg benchConfig) (NetworkResult, error) {
	net, err := bnbnet.New(family, cfg.m)
	if err != nil {
		return NetworkResult{}, err
	}
	n := net.Inputs()
	batches := workload(n, cfg.routeSamples, cfg.seed)
	// Warm-up: scratch pools, allocator, branch predictors.
	for i := 0; i < len(batches) && i < 16; i++ {
		if _, err := net.Route(batches[i]); err != nil {
			return NetworkResult{}, fmt.Errorf("%s warm-up: %w", family, err)
		}
	}
	samples := make([]int64, len(batches))
	for i, words := range batches {
		start := time.Now()
		if _, err := net.Route(words); err != nil {
			return NetworkResult{}, fmt.Errorf("%s: %w", family, err)
		}
		samples[i] = time.Since(start).Nanoseconds()
	}
	mean, p50, p99 := summarize(samples)
	res := NetworkResult{
		Family:       family,
		Samples:      len(samples),
		NsPerOp:      mean,
		RoutesPerSec: 1e9 / mean,
		P50Ns:        p50,
		P99Ns:        p99,
	}
	res.AllocsPerOp = allocsPerOp(64, func() { net.Route(batches[0]) }) //nolint:errcheck // measured above

	if br, ok := bnbnet.AsBulkRouter(net); ok {
		dst := make([]bnbnet.Word, n)
		pooled := make([]int64, len(batches))
		for i, words := range batches {
			start := time.Now()
			if err := br.RouteInto(dst, words); err != nil {
				return NetworkResult{}, fmt.Errorf("%s pooled: %w", family, err)
			}
			pooled[i] = time.Since(start).Nanoseconds()
		}
		pmean, _, _ := summarize(pooled)
		res.PooledNsPerOp = pmean
	}
	return res, nil
}

func benchEngine(workers int, cfg benchConfig) (EngineResult, error) {
	net, err := bnbnet.New("bnb", cfg.m)
	if err != nil {
		return EngineResult{}, err
	}
	sink := bnbnet.NewMetrics()
	eng, err := bnbnet.NewEngine(net, bnbnet.WithWorkers(workers), bnbnet.WithMetrics(sink))
	if err != nil {
		return EngineResult{}, err
	}
	elapsed, err := driveBatches(eng.RoutePermBatch, net.Inputs(), cfg.engineRequests, cfg.seed)
	cerr := eng.Close()
	if err != nil {
		return EngineResult{}, err
	}
	if cerr != nil {
		return EngineResult{}, cerr
	}
	s := sink.Snapshot()
	return EngineResult{
		Workers:      workers,
		Requests:     cfg.engineRequests,
		RoutesPerSec: float64(cfg.engineRequests) / elapsed.Seconds(),
		P50Ns:        s.P50.Nanoseconds(),
		P99Ns:        s.P99.Nanoseconds(),

		BatchDequeues:   s.BatchDequeues,
		BatchedRequests: s.BatchedRequests,
		MeanBatch:       s.MeanBatch(),
		Steals:          s.Steals,
		StolenRequests:  s.StolenRequests,
		WorkerParks:     s.WorkerParks,
	}, nil
}

func benchPlanes(cfg benchConfig) (PlaneResult, error) {
	const planes = 2
	workers := cfg.workers[len(cfg.workers)-1]
	sink := bnbnet.NewMetrics()
	sup, err := bnbnet.NewSupervised("bnb", cfg.m,
		bnbnet.WithPlanes(planes), bnbnet.WithWorkers(workers), bnbnet.WithMetrics(sink))
	if err != nil {
		return PlaneResult{}, err
	}
	n := 1 << uint(cfg.m)
	elapsed, err := driveBatches(sup.RoutePermBatch, n, cfg.engineRequests, cfg.seed)
	failovers := sup.Failovers()
	cerr := sup.Close()
	if err != nil {
		return PlaneResult{}, err
	}
	if cerr != nil {
		return PlaneResult{}, cerr
	}
	s := sink.Snapshot()
	return PlaneResult{
		Planes:       planes,
		Workers:      workers,
		Requests:     cfg.engineRequests,
		RoutesPerSec: float64(cfg.engineRequests) / elapsed.Seconds(),
		P50Ns:        s.P50.Nanoseconds(),
		P99Ns:        s.P99.Nanoseconds(),
		Failovers:    failovers,
	}, nil
}

// driveBatches pushes `requests` random permutations through the serving
// front in fixed-size batches and returns the wall-clock time.
func driveBatches(route func([]bnbnet.Perm) ([][]bnbnet.Word, []error), n, requests int, seed int64) (time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	const batch = 128
	start := time.Now()
	for done := 0; done < requests; done += batch {
		size := batch
		if requests-done < size {
			size = requests - done
		}
		ps := make([]bnbnet.Perm, size)
		for i := range ps {
			ps[i] = bnbnet.RandomPerm(n, rng)
		}
		_, errs := route(ps)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}
