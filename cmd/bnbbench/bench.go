package main

// The measurement core of bnbbench. runBench is a pure function of its
// config — seeded workloads, no global state — so the test suite drives it
// in-process and the CLI just wires flags to it.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	bnbnet "repro"
)

// Report is the machine-readable result of one bnbbench run at one order —
// the BENCH_<m>.json payload. Schema "bnbbench/v1"; Validate checks an
// emitted file against it.
type Report struct {
	Schema string `json:"schema"`
	M      int    `json:"m"`
	N      int    `json:"n"`
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Quick  bool   `json:"quick"`

	Networks []NetworkResult `json:"networks"`
	Engine   []EngineResult  `json:"engine"`
	Planes   []PlaneResult   `json:"planes"`
}

// NetworkResult is the single-threaded route latency profile of one family.
type NetworkResult struct {
	Family       string  `json:"family"`
	Samples      int     `json:"samples"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	RoutesPerSec float64 `json:"routes_per_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	// PooledNsPerOp is the zero-allocation RouteInto path, present only for
	// families offering the BulkRouter surface (0 otherwise).
	PooledNsPerOp float64 `json:"pooled_ns_per_op,omitempty"`
}

// EngineResult is one point of the serving-engine throughput sweep.
type EngineResult struct {
	Workers      int     `json:"workers"`
	Requests     int     `json:"requests"`
	RoutesPerSec float64 `json:"routes_per_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
}

// PlaneResult is one point of the supervised multi-plane sweep.
type PlaneResult struct {
	Planes       int     `json:"planes"`
	Workers      int     `json:"workers"`
	Requests     int     `json:"requests"`
	RoutesPerSec float64 `json:"routes_per_sec"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	Failovers    int64   `json:"failovers"`
}

// benchConfig sizes one run. The zero value is not useful; build with
// defaultConfig.
type benchConfig struct {
	m        int
	families []string
	workers  []int
	quick    bool
	seed     int64

	routeSamples   int // per-family latency samples
	engineRequests int // per sweep point
}

func defaultConfig(m int, families []string, workers []int, quick bool) benchConfig {
	cfg := benchConfig{
		m:              m,
		families:       families,
		workers:        workers,
		quick:          quick,
		seed:           1991, // the paper's year; fixed so runs are comparable
		routeSamples:   1500,
		engineRequests: 4000,
	}
	if quick {
		cfg.routeSamples = 300
		cfg.engineRequests = 800
	}
	return cfg
}

// runBench measures every configured family and sweep at order cfg.m.
func runBench(cfg benchConfig) (Report, error) {
	rep := Report{
		Schema: "bnbbench/v1",
		M:      cfg.m,
		N:      1 << uint(cfg.m),
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Quick:  cfg.quick,
	}
	for _, family := range cfg.families {
		nr, err := benchNetwork(family, cfg)
		if err != nil {
			return Report{}, err
		}
		rep.Networks = append(rep.Networks, nr)
	}
	for _, w := range cfg.workers {
		er, err := benchEngine(w, cfg)
		if err != nil {
			return Report{}, err
		}
		rep.Engine = append(rep.Engine, er)
	}
	pr, err := benchPlanes(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Planes = append(rep.Planes, pr)
	return rep, nil
}

// workload pre-generates the sample permutations as word batches so
// generation cost stays out of the timed region.
func workload(n, samples int, seed int64) [][]bnbnet.Word {
	rng := rand.New(rand.NewSource(seed))
	batches := make([][]bnbnet.Word, samples)
	for i := range batches {
		p := bnbnet.RandomPerm(n, rng)
		words := make([]bnbnet.Word, n)
		for j, d := range p {
			words[j] = bnbnet.Word{Addr: d, Data: uint64(j)}
		}
		batches[i] = words
	}
	return batches
}

// summarize turns raw per-op nanosecond samples into the latency triple.
func summarize(samples []int64) (mean float64, p50, p99 int64) {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, s := range sorted {
		sum += s
	}
	mean = float64(sum) / float64(len(sorted))
	pick := func(q float64) int64 {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	return mean, pick(0.50), pick(0.99)
}

// allocsPerOp measures the steady-state heap allocations of fn, the
// ReadMemStats-delta analogue of testing.AllocsPerRun.
func allocsPerOp(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm pools and lazy initialization outside the measured window
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

func benchNetwork(family string, cfg benchConfig) (NetworkResult, error) {
	net, err := bnbnet.New(family, cfg.m)
	if err != nil {
		return NetworkResult{}, err
	}
	n := net.Inputs()
	batches := workload(n, cfg.routeSamples, cfg.seed)
	// Warm-up: scratch pools, allocator, branch predictors.
	for i := 0; i < len(batches) && i < 16; i++ {
		if _, err := net.Route(batches[i]); err != nil {
			return NetworkResult{}, fmt.Errorf("%s warm-up: %w", family, err)
		}
	}
	samples := make([]int64, len(batches))
	for i, words := range batches {
		start := time.Now()
		if _, err := net.Route(words); err != nil {
			return NetworkResult{}, fmt.Errorf("%s: %w", family, err)
		}
		samples[i] = time.Since(start).Nanoseconds()
	}
	mean, p50, p99 := summarize(samples)
	res := NetworkResult{
		Family:       family,
		Samples:      len(samples),
		NsPerOp:      mean,
		RoutesPerSec: 1e9 / mean,
		P50Ns:        p50,
		P99Ns:        p99,
	}
	res.AllocsPerOp = allocsPerOp(64, func() { net.Route(batches[0]) }) //nolint:errcheck // measured above

	if br, ok := bnbnet.AsBulkRouter(net); ok {
		dst := make([]bnbnet.Word, n)
		pooled := make([]int64, len(batches))
		for i, words := range batches {
			start := time.Now()
			if err := br.RouteInto(dst, words); err != nil {
				return NetworkResult{}, fmt.Errorf("%s pooled: %w", family, err)
			}
			pooled[i] = time.Since(start).Nanoseconds()
		}
		pmean, _, _ := summarize(pooled)
		res.PooledNsPerOp = pmean
	}
	return res, nil
}

func benchEngine(workers int, cfg benchConfig) (EngineResult, error) {
	net, err := bnbnet.New("bnb", cfg.m)
	if err != nil {
		return EngineResult{}, err
	}
	sink := bnbnet.NewMetrics()
	eng, err := bnbnet.NewEngine(net, bnbnet.WithWorkers(workers), bnbnet.WithMetrics(sink))
	if err != nil {
		return EngineResult{}, err
	}
	elapsed, err := driveBatches(eng.RoutePermBatch, net.Inputs(), cfg.engineRequests, cfg.seed)
	cerr := eng.Close()
	if err != nil {
		return EngineResult{}, err
	}
	if cerr != nil {
		return EngineResult{}, cerr
	}
	s := sink.Snapshot()
	return EngineResult{
		Workers:      workers,
		Requests:     cfg.engineRequests,
		RoutesPerSec: float64(cfg.engineRequests) / elapsed.Seconds(),
		P50Ns:        s.P50.Nanoseconds(),
		P99Ns:        s.P99.Nanoseconds(),
	}, nil
}

func benchPlanes(cfg benchConfig) (PlaneResult, error) {
	const planes = 2
	workers := cfg.workers[len(cfg.workers)-1]
	sink := bnbnet.NewMetrics()
	sup, err := bnbnet.NewSupervised("bnb", cfg.m,
		bnbnet.WithPlanes(planes), bnbnet.WithWorkers(workers), bnbnet.WithMetrics(sink))
	if err != nil {
		return PlaneResult{}, err
	}
	n := 1 << uint(cfg.m)
	elapsed, err := driveBatches(sup.RoutePermBatch, n, cfg.engineRequests, cfg.seed)
	failovers := sup.Failovers()
	cerr := sup.Close()
	if err != nil {
		return PlaneResult{}, err
	}
	if cerr != nil {
		return PlaneResult{}, cerr
	}
	s := sink.Snapshot()
	return PlaneResult{
		Planes:       planes,
		Workers:      workers,
		Requests:     cfg.engineRequests,
		RoutesPerSec: float64(cfg.engineRequests) / elapsed.Seconds(),
		P50Ns:        s.P50.Nanoseconds(),
		P99Ns:        s.P99.Nanoseconds(),
		Failovers:    failovers,
	}, nil
}

// driveBatches pushes `requests` random permutations through the serving
// front in fixed-size batches and returns the wall-clock time.
func driveBatches(route func([]bnbnet.Perm) ([][]bnbnet.Word, []error), n, requests int, seed int64) (time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	const batch = 128
	start := time.Now()
	for done := 0; done < requests; done += batch {
		size := batch
		if requests-done < size {
			size = requests - done
		}
		ps := make([]bnbnet.Perm, size)
		for i := range ps {
			ps[i] = bnbnet.RandomPerm(n, rng)
		}
		_, errs := route(ps)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}
