// Command bnbbench records the repository's performance trajectory: it
// measures route latency (mean, P50, P99, allocations) for the configured
// network families, sweeps the serving engine across worker counts, and runs
// the supervised two-plane stack, writing one machine-readable
// BENCH_<m>.json per order. Committed alongside the code, successive files
// document how the implementation's throughput evolves; CI regenerates and
// validates them on every push.
//
//	bnbbench -quick -m 5                 # one fast order, BENCH_5.json
//	bnbbench -m 3,5,7 -out bench/        # the full trajectory set
//	bnbbench -validate BENCH_5.json      # strict schema + sanity check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	bnbnet "repro"
)

func main() {
	var (
		ms       = flag.String("m", "3,5,7", "comma-separated network orders (N = 2^m)")
		nets     = flag.String("nets", "bnb,batcher,benes", "comma-separated families to profile: "+strings.Join(bnbnet.Families(), ", "))
		workers  = flag.String("workers", "1,2,4", "comma-separated worker counts for the engine sweep")
		quick    = flag.Bool("quick", false, "reduced sample counts for CI smoke runs")
		out      = flag.String("out", ".", "directory the BENCH_<m>.json files are written to")
		validate = flag.String("validate", "", "validate an existing report file and exit")
		minScale = flag.Float64("minscale", 0, "with -validate: require max-worker throughput >= minscale x 1-worker (multi-core runners only)")
	)
	flag.Parse()
	if err := run(*ms, *nets, *workers, *quick, *out, *validate, *minScale); err != nil {
		fmt.Fprintln(os.Stderr, "bnbbench:", err)
		os.Exit(1)
	}
}

func run(ms, nets, workers string, quick bool, out, validate string, minScale float64) error {
	if validate != "" {
		f, err := os.Open(validate)
		if err != nil {
			return err
		}
		defer f.Close()
		rep, err := Validate(f)
		if err != nil {
			return fmt.Errorf("%s: %w", validate, err)
		}
		if minScale > 0 {
			if err := checkScaling(rep, minScale); err != nil {
				return fmt.Errorf("%s: %w", validate, err)
			}
		}
		fmt.Printf("%s: valid bnbbench/v6 report (m=%d, %d families, %d engine points, %d plan sweep points, %d cluster points, reconfig blackout %dns)\n",
			validate, rep.M, len(rep.Networks), len(rep.Engine), len(rep.Plan.HitSweep), len(rep.Cluster.Sweep), rep.Reconfig.SwapBlackoutNs)
		return nil
	}
	if minScale > 0 {
		return fmt.Errorf("-minscale applies only with -validate")
	}
	orders, err := parseInts(ms)
	if err != nil {
		return fmt.Errorf("-m: %w", err)
	}
	wl, err := parseInts(workers)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	families := strings.Split(nets, ",")
	for i := range families {
		families[i] = strings.TrimSpace(families[i])
	}
	for _, m := range orders {
		cfg := defaultConfig(m, families, wl, quick)
		rep, err := runBench(cfg)
		if err != nil {
			return fmt.Errorf("m=%d: %w", m, err)
		}
		if err := checkReport(rep); err != nil {
			return fmt.Errorf("m=%d: self-check: %w", m, err)
		}
		path := filepath.Join(out, fmt.Sprintf("BENCH_%d.json", m))
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		best := rep.Engine[0]
		for _, er := range rep.Engine {
			if er.RoutesPerSec > best.RoutesPerSec {
				best = er
			}
		}
		fmt.Printf("%s: %d families, engine peak %.0f routes/sec at %d workers\n",
			path, len(rep.Networks), best.RoutesPerSec, best.Workers)
	}
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, field := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
