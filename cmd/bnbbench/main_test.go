package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig keeps in-process runs fast: one small order, minimal samples.
func tinyConfig() benchConfig {
	cfg := defaultConfig(3, []string{"bnb", "batcher", "benes"}, []int{1, 2}, true)
	cfg.routeSamples = 40
	cfg.engineRequests = 100
	return cfg
}

func TestRunBenchProducesValidReport(t *testing.T) {
	rep, err := runBench(tinyConfig())
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	if err := checkReport(rep); err != nil {
		t.Fatalf("checkReport: %v", err)
	}
	if len(rep.Networks) != 3 {
		t.Fatalf("got %d network results, want 3", len(rep.Networks))
	}
	if len(rep.Engine) != 2 {
		t.Fatalf("got %d engine points, want 2", len(rep.Engine))
	}
	if len(rep.Planes) != 1 || rep.Planes[0].Planes != 2 {
		t.Fatalf("plane sweep %+v, want one 2-plane point", rep.Planes)
	}
	// bnb offers the pooled BulkRouter path; batcher does not.
	for _, nr := range rep.Networks {
		switch nr.Family {
		case "bnb":
			if nr.PooledNsPerOp <= 0 {
				t.Errorf("bnb: pooled_ns_per_op = %v, want > 0", nr.PooledNsPerOp)
			}
		case "batcher":
			if nr.PooledNsPerOp != 0 {
				t.Errorf("batcher: pooled_ns_per_op = %v, want 0", nr.PooledNsPerOp)
			}
		}
	}
	// The v2 plan section: replay is the whole point — it must undercut the
	// compile pass and allocate nothing, and repetition must become hits.
	if rep.Plan.ReplayNsPerOp >= rep.Plan.CompileNsPerOp {
		t.Errorf("plan replay %v ns/op not below compile %v", rep.Plan.ReplayNsPerOp, rep.Plan.CompileNsPerOp)
	}
	if rep.Plan.ReplayAllocsPerOp != 0 {
		t.Errorf("plan replay allocates %v per op, want 0", rep.Plan.ReplayAllocsPerOp)
	}
	if len(rep.Plan.HitSweep) != 3 {
		t.Fatalf("got %d hit sweep points, want 3", len(rep.Plan.HitSweep))
	}
	full := rep.Plan.HitSweep[2]
	if full.RepeatRatio != 1.0 || full.HitRatio < 0.9 {
		t.Errorf("fully repeated workload hit ratio = %v, want >= 0.9", full.HitRatio)
	}
	// The v3 reconfig section: the rollout must pre-warm the working set
	// into the fresh caches, so the first post-rollout requests mostly hit.
	rc := rep.Reconfig
	if rc.Planes != 2 || rc.RolloutNs <= 0 || rc.DrainNs <= 0 {
		t.Errorf("reconfig profile incomplete: %+v", rc)
	}
	if rc.SwapBlackoutNs <= 0 || rc.SwapBlackoutNs > rc.RolloutNs {
		t.Errorf("swap blackout %dns outside (0, rollout %dns]", rc.SwapBlackoutNs, rc.RolloutNs)
	}
	if rc.PlanWarms < 8 {
		t.Errorf("plan warms = %d, want >= 8 (8 hot plans carried onto at least one plane)", rc.PlanWarms)
	}
	// Each of the two planes donates the half of the working set the rotor
	// parked on it, so a hot plan can cost at most one post-rollout miss
	// before its compile refills the cache: 56/64 = 0.875 is the floor.
	if rc.WarmHitRatio < 0.8 {
		t.Errorf("warm hit ratio = %v, want >= 0.8 (working set pre-warmed before admission)", rc.WarmHitRatio)
	}
	// The v6 cluster section: quick mode sweeps 2 and 4 shards, the port
	// count scales with the fleet, and decomposing an aggregate permutation
	// (pure matching bookkeeping) undercuts routing it through the shards.
	cl := rep.Cluster
	if cl.ShardOrder != 3 || len(cl.Sweep) != 2 {
		t.Fatalf("cluster sweep %+v, want 2 points at shard order 3", cl)
	}
	for _, cp := range cl.Sweep {
		if cp.Inputs != cp.Shards<<3 {
			t.Errorf("cluster %d shards: %d inputs, want %d", cp.Shards, cp.Inputs, cp.Shards<<3)
		}
		if cp.DecomposeNsPerOp >= cp.NsPerOp {
			t.Errorf("cluster %d shards: decompose %v ns/op not below end-to-end %v",
				cp.Shards, cp.DecomposeNsPerOp, cp.NsPerOp)
		}
	}
}

func TestValidateRoundTrip(t *testing.T) {
	rep, err := runBench(tinyConfig())
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := Validate(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got.M != rep.M || got.N != rep.N || len(got.Networks) != len(rep.Networks) {
		t.Fatalf("round trip mutated report: %+v vs %+v", got, rep)
	}
}

func TestValidateRejections(t *testing.T) {
	rep, err := runBench(tinyConfig())
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	marshal := func(r Report) []byte {
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return buf
	}
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"unknown field", []byte(`{"schema":"bnbbench/v6","bogus":1}`), "decode"},
		{"wrong schema", marshal(func() Report { r := rep; r.Schema = "bnbbench/v2"; return r }()), "schema"},
		{"n mismatch", marshal(func() Report { r := rep; r.N = 7; return r }()), "2^m"},
		{"missing family", marshal(func() Report {
			r := rep
			r.Networks = r.Networks[:1] // bnb only
			return r
		}()), "required family"},
		{"inverted percentiles", marshal(func() Report {
			r := rep
			nets := append([]NetworkResult(nil), r.Networks...)
			nets[0].P99Ns = nets[0].P50Ns - 1
			r.Networks = nets
			return r
		}()), "out of order"},
		{"empty stamp", marshal(func() Report { r := rep; r.Go = ""; return r }()), "machine stamp"},
		{"replay above compile", marshal(func() Report {
			r := rep
			r.Plan.ReplayNsPerOp = r.Plan.CompileNsPerOp + 1
			return r
		}()), "arbiter"},
		{"hit ratio out of range", marshal(func() Report {
			r := rep
			sweep := append([]HitPoint(nil), r.Plan.HitSweep...)
			sweep[0].HitRatio = 1.5
			r.Plan.HitSweep = sweep
			return r
		}()), "out of [0,1]"},
		{"blackout above rollout", marshal(func() Report {
			r := rep
			r.Reconfig.SwapBlackoutNs = r.Reconfig.RolloutNs + 1
			return r
		}()), "swap blackout"},
		{"no plan warms", marshal(func() Report {
			r := rep
			r.Reconfig.PlanWarms = 0
			return r
		}()), "plan warms"},
		{"hedging inflates the tail", marshal(func() Report {
			r := rep
			r.Tail.HedgedP99Ns = r.Tail.UnhedgedP99Ns + 1
			return r
		}()), "cut the slow-plane tail"},
		{"more wins than hedges", marshal(func() Report {
			r := rep
			r.Tail.Hedges = 1
			r.Tail.HedgeWins = 2
			return r
		}()), "hedge wins"},
		{"dequeue accounting broken", marshal(func() Report {
			r := rep
			eng := append([]EngineResult(nil), r.Engine...)
			eng[0].BatchedRequests++
			r.Engine = eng
			return r
		}()), "dequeues"},
		{"steal without stolen requests", marshal(func() Report {
			r := rep
			eng := append([]EngineResult(nil), r.Engine...)
			eng[0].Steals = eng[0].StolenRequests + 1
			r.Engine = eng
			return r
		}()), "stolen requests"},
		{"inverted QoS order", marshal(func() Report {
			r := rep
			classes := append([]ClassPoint(nil), r.Tail.Classes...)
			classes[0].ShedRate = 0.0
			classes[2].ShedRate = 0.5
			r.Tail.Classes = classes
			return r
		}()), "QoS order"},
		{"cluster sweep too short", marshal(func() Report {
			r := rep
			r.Cluster.Sweep = r.Cluster.Sweep[:1]
			return r
		}()), "sweep points"},
		{"cluster inputs off", marshal(func() Report {
			r := rep
			sweep := append([]ClusterPoint(nil), r.Cluster.Sweep...)
			sweep[0].Inputs++
			r.Cluster.Sweep = sweep
			return r
		}()), "aggregate ports"},
		{"decompose above end-to-end", marshal(func() Report {
			r := rep
			sweep := append([]ClusterPoint(nil), r.Cluster.Sweep...)
			sweep[0].DecomposeNsPerOp = sweep[0].NsPerOp + 1
			r.Cluster.Sweep = sweep
			return r
		}()), "decompose"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Validate(bytes.NewReader(tc.payload))
			if err == nil {
				t.Fatal("Validate accepted a bad report")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCLIRunEmitsAndValidatesFile(t *testing.T) {
	dir := t.TempDir()
	if err := run("3", "bnb,batcher,benes", "1", true, dir, "", 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	path := filepath.Join(dir, "BENCH_3.json")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("expected %s: %v", path, err)
	}
	defer f.Close()
	rep, err := Validate(f)
	if err != nil {
		t.Fatalf("emitted file fails validation: %v", err)
	}
	if rep.M != 3 || !rep.Quick {
		t.Fatalf("got m=%d quick=%v, want m=3 quick=true", rep.M, rep.Quick)
	}
	// The -validate mode must accept its own output.
	if err := run("", "", "", false, "", path, 0); err != nil {
		t.Fatalf("run -validate: %v", err)
	}
}

func TestCheckScaling(t *testing.T) {
	mk := func(w int, rps float64, p50, p99 int64) EngineResult {
		return EngineResult{Workers: w, Requests: 100, RoutesPerSec: rps, P50Ns: p50, P99Ns: p99}
	}
	good := Report{Engine: []EngineResult{mk(1, 1000, 100, 200), mk(4, 2000, 120, 300)}}
	if err := checkScaling(good, 1.5); err != nil {
		t.Fatalf("scaling report rejected: %v", err)
	}
	flat := Report{Engine: []EngineResult{mk(1, 1000, 100, 200), mk(4, 1200, 120, 300)}}
	if err := checkScaling(flat, 1.5); err == nil {
		t.Fatal("flat sweep accepted at minscale 1.5")
	}
	tailed := Report{Engine: []EngineResult{mk(1, 1000, 100, 200), mk(4, 2000, 100, 500)}}
	if err := checkScaling(tailed, 1.5); err == nil {
		t.Fatal("p99 above 4x p50 accepted")
	}
	single := Report{Engine: []EngineResult{mk(1, 1000, 100, 200)}}
	if err := checkScaling(single, 1.5); err == nil {
		t.Fatal("single-point sweep accepted — nothing to compare")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 3, 5 ,7")
	if err != nil || len(got) != 3 || got[0] != 3 || got[2] != 7 {
		t.Fatalf("parseInts: got %v, %v", got, err)
	}
	for _, bad := range []string{"", "3,x", "0", "-1,3"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}
