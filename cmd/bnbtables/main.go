// Command bnbtables regenerates the quantitative evaluation of Lee & Lu
// (ICDCS 1991): the hardware-complexity comparison of Table 1, the
// propagation-delay comparison of Table 2, the exact closed-form equations
// (6)-(12) reconciled against counted hardware of the constructed networks,
// the abstract's headline 1/3-hardware and 2/3-delay ratios, and the
// introduction's Beneš self-routing dichotomy.
//
// Usage:
//
//	bnbtables -table 1            # Table 1 rows across a sweep of N
//	bnbtables -table 2            # Table 2 rows across a sweep of N
//	bnbtables -eq 6               # eq (6) vs counted BNB hardware
//	bnbtables -eq 9               # eqs (7)-(9) vs measured BNB delay
//	bnbtables -eq 10              # eqs (10)-(12) vs constructed Batcher
//	bnbtables -claim              # headline hardware/delay ratio sweep
//	bnbtables -benes              # self-routing success-rate experiment
//	bnbtables -all                # everything above
//	bnbtables -maxm 12 -w 8       # sweep bounds and data width
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	bnbnet "repro"

	"repro/internal/baseline"
	"repro/internal/batcher"
	"repro/internal/benes"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gatesim"
	"repro/internal/omega"
	"repro/internal/perm"
)

func main() {
	var (
		table  = flag.Int("table", 0, "regenerate paper table 1 or 2")
		eq     = flag.Int("eq", 0, "reconcile equation group: 6, 9 or 10")
		claim  = flag.Bool("claim", false, "headline 1/3 hardware and 2/3 delay ratio sweep")
		benesF = flag.Bool("benes", false, "Beneš self-routing success-rate experiment")
		bound  = flag.Bool("bound", false, "switch counts vs the log2(N!) lower bound")
		pipe   = flag.Bool("pipeline", false, "pipelined-operation extension study")
		gates  = flag.Bool("gates", false, "gate-level bit-sorter compilation study")
		omegaF = flag.Bool("omega", false, "omega-network blocking study")
		jsonF  = flag.Bool("json", false, "emit the full machine-readable report as JSON")
		all    = flag.Bool("all", false, "run every experiment")
		minM   = flag.Int("minm", 3, "smallest network order (N = 2^m)")
		maxM   = flag.Int("maxm", 12, "largest network order")
		w      = flag.Int("w", 8, "data word width in bits")
		seed   = flag.Int64("seed", 1991, "random seed for sampled experiments")
		trials = flag.Int("trials", 300, "trials per sampled experiment")
	)
	flag.Parse()
	if *minM < 1 || *maxM < *minM {
		fmt.Fprintln(os.Stderr, "bnbtables: need 1 <= minm <= maxm")
		os.Exit(2)
	}
	ran := false
	if *jsonF {
		if err := printJSON(*minM, *maxM, *w, *trials, *seed); err != nil {
			fail(err)
		}
		return
	}
	if *all || *table == 1 {
		printTable1(*minM, *maxM)
		ran = true
	}
	if *all || *table == 2 {
		printTable2(*minM, *maxM)
		ran = true
	}
	if *all || *eq == 6 {
		if err := printEq6(*minM, *maxM, *w); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *eq == 9 {
		if err := printEq9(*minM, *maxM); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *eq == 10 {
		if err := printEq10(*minM, *maxM, *w); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *claim {
		if err := printClaim(*minM, *maxM, *w); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *benesF {
		if err := printBenes(*minM, *maxM, *trials, *seed); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *bound {
		if err := printBound(*minM, *maxM); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *pipe {
		if err := printPipeline(*minM, *maxM, *w); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *gates {
		if err := printGates(*minM, *maxM); err != nil {
			fail(err)
		}
		ran = true
	}
	if *all || *omegaF {
		if err := printOmega(*minM, *maxM, *trials, *seed); err != nil {
			fail(err)
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func printJSON(minM, maxM, w, trials int, seed int64) error {
	r, err := bnbnet.FullReport(minM, maxM, w, trials, seed)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(data, '\n'))
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bnbtables:", err)
	os.Exit(1)
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func printTable1(minM, maxM int) {
	fmt.Println("== Table 1: hardware complexities (leading terms) ==")
	tw := newTab()
	fmt.Fprintln(tw, "N\tnetwork\t2x2 switches\tfunction slices\tadder slices")
	for m := minM; m <= maxM; m++ {
		rows, err := cost.Table1(m)
		if err != nil {
			fail(err)
		}
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%s\t%.0f\t%.0f\t%.0f\n",
				1<<uint(m), r.Network, r.Switches, r.FunctionSlices, r.AdderSlices)
		}
	}
	tw.Flush()
	fmt.Println()
}

func printTable2(minM, maxM int) {
	fmt.Println("== Table 2: propagation delay (unit device delays) ==")
	tw := newTab()
	fmt.Fprintln(tw, "N\tBatcher\tKoppelman\tBNB\tsmallest")
	for m := minM; m <= maxM; m++ {
		rows, err := cost.Table2(m)
		if err != nil {
			fail(err)
		}
		best, bestAt := rows[0].Delay, rows[0].Network
		for _, r := range rows[1:] {
			if r.Delay < best {
				best, bestAt = r.Delay, r.Network
			}
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%s\n",
			1<<uint(m), rows[0].Delay, rows[1].Delay, rows[2].Delay, bestAt)
	}
	tw.Flush()
	fmt.Println("note: BNB overtakes Batcher at N=64 (m=6) and Koppelman at N=128 (m=7);")
	fmt.Println("      the leading-term ratios of the abstract hold asymptotically.")
	fmt.Println()
}

func printEq6(minM, maxM, w int) error {
	fmt.Printf("== Equation (6): BNB hardware, counted vs closed form (w=%d) ==\n", w)
	tw := newTab()
	fmt.Fprintln(tw, "N\tcounted sw\teq(6) sw\tcounted FN\teq(6) FN\tmatch")
	for m := minM; m <= maxM; m++ {
		n, err := core.New(m, w)
		if err != nil {
			return err
		}
		h := n.CountHardware()
		sw, fn := cost.BNBSwitches(m, w), cost.BNBFunctionNodes(m)
		match := "OK"
		if h.Switches != sw || h.FunctionNodes != fn {
			match = "MISMATCH"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\n", 1<<uint(m), h.Switches, sw, h.FunctionNodes, fn, match)
	}
	tw.Flush()
	fmt.Println()
	return nil
}

func printEq9(minM, maxM int) error {
	fmt.Println("== Equations (7)-(9): BNB delay, measured vs closed form ==")
	tw := newTab()
	fmt.Fprintln(tw, "N\tmeasured D_SW\teq(7)\tmeasured D_FN\teq(8)\teq(9) total\tmatch")
	for m := minM; m <= maxM; m++ {
		n, err := core.New(m, 0)
		if err != nil {
			return err
		}
		d := n.MeasureDelay()
		sw, fn := cost.BNBDelaySW(m), cost.BNBDelayFN(m)
		match := "OK"
		if d.SwitchStages != sw || d.FunctionNodeLevels != fn {
			match = "MISMATCH"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.0f\t%s\n",
			1<<uint(m), d.SwitchStages, sw, d.FunctionNodeLevels, fn, cost.BNBDelay(m, 1, 1), match)
	}
	tw.Flush()
	fmt.Println()
	return nil
}

func printEq10(minM, maxM, w int) error {
	fmt.Printf("== Equations (10)-(12): Batcher network, constructed vs closed form (w=%d) ==\n", w)
	tw := newTab()
	fmt.Fprintln(tw, "N\tcomparators\teq(10)\tswitch slices\teq(11) sw\tstages\teq(12) D_SW\tmatch")
	for m := minM; m <= maxM; m++ {
		n, err := batcher.New(m, w)
		if err != nil {
			return err
		}
		h := n.CountHardware()
		d := n.MeasureDelay()
		c10, c11, d12 := cost.BatcherComparators(m), cost.BatcherSwitches(m, w), cost.BatcherDelaySW(m)
		match := "OK"
		if h.Comparators != c10 || h.Switches != c11 || d.SwitchStages != d12 {
			match = "MISMATCH"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			1<<uint(m), h.Comparators, c10, h.Switches, c11, n.Stages(), d12, match)
	}
	tw.Flush()
	fmt.Println()
	return nil
}

func printClaim(minM, maxM, w int) error {
	fmt.Printf("== Headline claims: BNB/Batcher ratios (exact formulas, w=%d) ==\n", w)
	tw := newTab()
	fmt.Fprintln(tw, "N\thardware ratio\tdelay ratio\t(asymptotes: 1/3 and 2/3)")
	for m := minM; m <= maxM; m++ {
		hw, d, err := cost.HeadlineRatios(m, w)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t\n", 1<<uint(m), hw, d)
	}
	tw.Flush()
	fmt.Println()
	return nil
}

func printBenes(minM, maxM, trials int, seed int64) error {
	fmt.Println("== Beneš self-routing dichotomy (intro claim) ==")
	tw := newTab()
	fmt.Fprintln(tw, "N\trandom perms routed\tshifts routed\tcomplements routed\tlooping routed")
	rng := rand.New(rand.NewSource(seed))
	for m := minM; m <= maxM && m <= 10; m++ {
		n, err := benes.New(m)
		if err != nil {
			return err
		}
		d := benes.DefaultSelfRouting(m)
		rate, err := n.SelfRouteRate(d, trials, rng)
		if err != nil {
			return err
		}
		shifts, comps := 0, 0
		for a := 0; a < n.Inputs(); a++ {
			if ok, _, err := n.RouteSelf(perm.VectorShift(n.Inputs(), a), d); err != nil {
				return err
			} else if ok {
				shifts++
			}
			pc := make(perm.Perm, n.Inputs())
			for i := range pc {
				pc[i] = i ^ a
			}
			if ok, _, err := n.RouteSelf(pc, d); err != nil {
				return err
			} else if ok {
				comps++
			}
		}
		loopOK := 0
		for trial := 0; trial < 20; trial++ {
			ok, err := n.Verify(perm.Random(n.Inputs(), rng))
			if err != nil {
				return err
			}
			if ok {
				loopOK++
			}
		}
		fmt.Fprintf(tw, "%d\t%.1f%%\t%d/%d\t%d/%d\t%d/20\n",
			1<<uint(m), 100*rate, shifts, n.Inputs(), comps, n.Inputs(), loopOK)
	}
	tw.Flush()
	fmt.Println("reading: bit-controlled self-routing handles structured classes but a vanishing")
	fmt.Println("fraction of random permutations; the looping algorithm (global) handles all, at")
	fmt.Println("the cost of centralized set-up — the gap the BNB network closes.")
	fmt.Println()
	return nil
}

func printBound(minM, maxM int) error {
	fmt.Println("== Extension: 2x2-switch spend vs the log2(N!) lower bound ==")
	tw := newTab()
	fmt.Fprintln(tw, "N\tbound\twaksman\tbenes\tbnb\tbatcher\tkoppelman\tcrossbar\t(factors over bound)")
	for m := minM; m <= maxM; m++ {
		rows, err := cost.LowerBoundComparison(m)
		if err != nil {
			return err
		}
		byName := map[string]cost.LowerBoundRow{}
		for _, r := range rows {
			byName[r.Network] = r
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.2fx\t%.2fx\t%.2fx\t%.2fx\t%.2fx\t%.2fx\t\n",
			1<<uint(m), byName["lower-bound"].Switches,
			byName["waksman"].Factor, byName["benes"].Factor, byName["bnb"].Factor,
			byName["batcher"].Factor, byName["koppelman"].Factor,
			byName["crossbar"].Factor)
	}
	tw.Flush()
	fmt.Println("reading: Waksman/Beneš track the bound within a small constant; the self-routing")
	fmt.Println("designs pay a log-factor premium for autonomy; the crossbar pays N/log(N!).")
	fmt.Println()
	return nil
}

func printPipeline(minM, maxM, w int) error {
	fmt.Printf("== Extension: pipelined operation (registers after every stage, w=%d) ==\n", w)
	tw := newTab()
	fmt.Fprintln(tw, "N\tBNB beat\tBatcher beat\tBNB regs\tBatcher regs\tBNB thpt\tBatcher thpt")
	for m := minM; m <= maxM; m++ {
		b, err := cost.BNBPipeline(m, w)
		if err != nil {
			return err
		}
		a, err := cost.BatcherPipeline(m, w)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d·FN+%d·SW\t%d·FN+%d·SW\t%d\t%d\t%.4f\t%.4f\n",
			1<<uint(m), b.BeatFN, b.BeatSW, a.BeatFN, a.BeatSW,
			b.Registers, a.Registers, b.Throughput(1, 1), a.Throughput(1, 1))
	}
	tw.Flush()
	fmt.Println("reading: at stage granularity the BNB beat is its deepest arbiter (2m·D_FN),")
	fmt.Println("so pipelined Batcher leads on cycle time; BNB keeps the register-area edge.")
	fmt.Println()
	fmt.Println("-- fine-grained (node-level) pipelining: beat = 1 device delay for both --")
	tw2 := newTab()
	fmt.Fprintln(tw2, "N\tBNB depth\tBatcher depth\tBNB regs\tBatcher regs")
	for m := minM; m <= maxM; m++ {
		b, err := cost.BNBPipelineFine(m, w)
		if err != nil {
			return err
		}
		a, err := cost.BatcherPipelineFine(m, w)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw2, "%d\t%d\t%d\t%d\t%d\n",
			1<<uint(m), b.LatencyBeats, a.LatencyBeats, b.Registers, a.Registers)
	}
	tw2.Flush()
	fmt.Println("reading: with the arbiter itself pipelined, throughput ties at one beat and")
	fmt.Println("the comparison reverts to fill latency and registers — where BNB's eq. (9)")
	fmt.Println("depth beats Batcher's full eq. (12) at every order, restoring the paper's")
	fmt.Println("advantage (the Table 2 crossovers came from the truncated Batcher row).")
	fmt.Println()
	return nil
}

func printGates(minM, maxM int) error {
	fmt.Println("== Extension: gate-level compilation of the bit-sorter network ==")
	tw := newTab()
	fmt.Fprintln(tw, "N\tlogic gates\tmux\txor\tand/or/not\tcritical path\tclosed form\tspare gates")
	for m := minM; m <= maxM && m <= 10; m++ {
		c, err := gatesim.BuildBSN(m)
		if err != nil {
			return err
		}
		nl := c.Netlist
		cp, err := nl.CriticalPath(c.Outputs)
		if err != nil {
			return err
		}
		cone, err := nl.FanInCone(c.Outputs)
		if err != nil {
			return err
		}
		spare := 0
		for _, in := range cone {
			if !in {
				spare++
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			1<<uint(m), nl.LogicGates(), nl.CountKind(gatesim.KindMux),
			nl.CountKind(gatesim.KindXor), nl.CountKind(gatesim.KindAnd),
			cp, gatesim.ExpectedBSNGateDepth(m), spare)
	}
	tw.Flush()
	fmt.Println("reading: the compiled circuit equals the behavioural model (test-proven);")
	fmt.Println("the spare gates are the paper's unused odd-child flags, kept for conflict")
	fmt.Println("handling in other applications.")
	fmt.Println()
	return nil
}

func printOmega(minM, maxM, trials int, seed int64) error {
	fmt.Println("== Extension: banyan blocking (why log N stages cannot permute) ==")
	tw := newTab()
	fmt.Fprintln(tw, "N\tswitches\troutable perms\tof N! (exact, small N)\tomega pass rate\tbaseline pass rate")
	rng := rand.New(rand.NewSource(seed))
	for m := minM; m <= maxM && m <= 10; m++ {
		net, err := omega.New(m)
		if err != nil {
			return err
		}
		rate, err := net.PassRate(trials, rng)
		if err != nil {
			return err
		}
		base, err := baseline.New(m)
		if err != nil {
			return err
		}
		baseRate, err := base.PassRate(trials, rng)
		if err != nil {
			return err
		}
		exact := ""
		if m <= 3 {
			nfact := 1.0
			for i := 2; i <= net.Inputs(); i++ {
				nfact *= float64(i)
			}
			exact = fmt.Sprintf("%.4f", net.RoutablePermutations()/nfact)
		}
		fmt.Fprintf(tw, "%d\t%d\t2^%d\t%s\t%.4f\t%.4f\n",
			net.Inputs(), net.Switches(), net.Switches(), exact, rate, baseRate)
	}
	tw.Flush()
	fmt.Println("reading: a unique-path banyan realizes exactly one permutation per switch")
	fmt.Println("setting (2^(N/2·logN) of N!), vanishing as N grows; the BNB network spends")
	fmt.Println("log^2 N more stages to reach all N! with purely local decisions.")
	fmt.Println()
	return nil
}
