// Command netviz regenerates the paper's structural figures as ASCII
// diagrams derived from the constructed network objects:
//
//	netviz -fig 1          # Fig. 1: 8-input generalized baseline network
//	netviz -fig 3          # Figs. 2-3: BNB nested-network profile
//	netviz -fig 4          # Fig. 4: 8-input splitter with arbiter tree
//	netviz -fig 5          # Fig. 5: arbiter function node + truth table
//	netviz -fig 0 -m 4     # bonus: the bit-sorter network of order m
//	netviz -fig 6 -m 4     # bonus: Batcher comparator diagram (Knuth style)
//	netviz -fig 7 -m 3     # bonus: a routed BNB instance, stage by stage
//	netviz -fig 8 -m 3     # bonus: one splitter decision on a random vector
//
// -m and -w change the rendered order and data width where applicable.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	bnbnet "repro"
)

func main() {
	var (
		fig  = flag.Int("fig", 1, "figure number: 1 (GBN), 3 (BNB profile), 4 (splitter), 5 (function node), 0 (BSN), 6 (Batcher), 7 (route instance), 8 (splitter instance)")
		m    = flag.Int("m", 3, "network order (N = 2^m)")
		w    = flag.Int("w", 0, "data width for the BNB profile")
		seed = flag.Int64("seed", 1, "seed for the fig 7 route instance")
	)
	flag.Parse()
	var (
		out string
		err error
	)
	switch *fig {
	case 0:
		out, err = bnbnet.FigBSN(*m)
	case 1:
		out, err = bnbnet.FigGBN(*m)
	case 2, 3:
		out, err = bnbnet.FigBNBProfile(*m, *w)
	case 4:
		out, err = bnbnet.FigSplitter(*m)
	case 5:
		out = bnbnet.FigFunctionNode()
	case 6:
		out, err = bnbnet.FigBatcher(*m)
	case 7:
		p := bnbnet.RandomPerm(1<<uint(*m), rand.New(rand.NewSource(*seed)))
		out, err = bnbnet.FigRouteInstance(*m, p)
	case 8:
		rng := rand.New(rand.NewSource(*seed))
		bits := make([]uint8, 1<<uint(*m))
		for i := 0; i < len(bits); i += 2 {
			bits[i] = uint8(rng.Intn(2))
			bits[i+1] = bits[i] ^ 1
		}
		out, err = bnbnet.FigSplitterInstance(*m, bits)
	default:
		err = fmt.Errorf("unknown figure %d", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netviz:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
