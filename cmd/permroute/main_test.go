package main

import (
	"testing"
)

func TestBuildPermExplicit(t *testing.T) {
	p, err := buildPerm("2, 0 ,1", "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0] != 2 || p[1] != 0 || p[2] != 1 {
		t.Errorf("buildPerm = %v", p)
	}
	if _, err := buildPerm("1,1,0", "", 0, 0); err == nil {
		t.Error("duplicate destinations accepted")
	}
	if _, err := buildPerm("a,b", "", 0, 0); err == nil {
		t.Error("non-numeric entries accepted")
	}
}

func TestBuildPermFamily(t *testing.T) {
	p, err := buildPerm("", "bit-reversal", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 8 || p[1] != 4 {
		t.Errorf("bit-reversal = %v", p)
	}
	if _, err := buildPerm("", "nope", 3, 1); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestBuildNet(t *testing.T) {
	for _, name := range []string{"bnb", "batcher", "koppelman", "benes", "waksman", "crossbar"} {
		n, err := buildNet(name, 3, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n.Name() != name {
			t.Errorf("buildNet(%q).Name() = %q", name, n.Name())
		}
		if n.Inputs() != 8 {
			t.Errorf("%s inputs = %d", name, n.Inputs())
		}
	}
	if _, err := buildNet("nope", 3, 0); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run("bnb", 3, "5,2,7,0,6,1,4,3", "", 1, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("bnb", 3, "", "random", 1, 0, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("batcher", 3, "", "random", 1, 0, true, 0); err == nil {
		t.Error("trace on non-bnb accepted")
	}
	if err := run("bnb", 3, "0,1", "", 1, 0, false, 0); err == nil {
		t.Error("wrong-size permutation accepted")
	}
}

func TestRunPlanMode(t *testing.T) {
	if err := run("bnb", 3, "5,2,7,0,6,1,4,3", "", 1, 0, false, 100); err != nil {
		t.Fatal(err)
	}
	if err := run("batcher", 3, "", "random", 1, 0, false, 100); err == nil {
		t.Error("-plan on a family without the compiled-plan surface accepted")
	}
}
