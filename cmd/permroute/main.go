// Command permroute routes one permutation through a chosen network and
// prints the delivery, optionally with the stage-by-stage trace of the BNB
// radix sort.
//
//	permroute -net bnb -m 3 -perm 5,2,7,0,6,1,4,3 -trace
//	permroute -net batcher -m 4 -family bit-reversal
//	permroute -net benes -m 5 -family random -seed 7
//	permroute -net bnb -m 5 -plan 1000       # compile once, replay 1000x
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	bnbnet "repro"
	"repro/internal/perm"
)

func main() {
	var (
		netName = flag.String("net", "bnb", "network family: "+strings.Join(bnbnet.Families(), ", "))
		m       = flag.Int("m", 3, "network order (N = 2^m)")
		permArg = flag.String("perm", "", "comma-separated destination list (overrides -family)")
		family  = flag.String("family", "random", "permutation family when -perm is not given")
		seed    = flag.Int64("seed", 1, "seed for random permutations")
		w       = flag.Int("w", 0, "data width in bits")
		trace   = flag.Bool("trace", false, "print the per-main-stage trace (bnb only)")
		plan    = flag.Int("plan", 0, "compile a route plan and replay it this many times, printing the amortized latency (plan-capable families only)")
	)
	flag.Parse()
	if err := run(*netName, *m, *permArg, *family, *seed, *w, *trace, *plan); err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
}

func run(netName string, m int, permArg, family string, seed int64, w int, trace bool, plan int) error {
	n := 1 << uint(m)
	p, err := buildPerm(permArg, family, m, seed)
	if err != nil {
		return err
	}
	if len(p) != n {
		return fmt.Errorf("permutation has %d entries, network needs %d", len(p), n)
	}
	// One registry call covers every family; the options fail loudly when a
	// family lacks the capability (-w on benes, -trace on batcher, ...).
	var opts []bnbnet.Option
	if trace {
		opts = append(opts, bnbnet.WithTrace(func(stage int, snapshot []bnbnet.Word) {
			label := fmt.Sprintf("after stage %d", stage-1)
			if stage == 0 {
				label = "network input"
			}
			addrs := make([]int, len(snapshot))
			for i, wd := range snapshot {
				addrs[i] = wd.Addr
			}
			fmt.Printf("  %-16s addresses: %v\n", label, addrs)
		}))
	}
	net, err := buildNet(netName, m, w, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("network: %s, N=%d, w=%d\n", net.Name(), net.Inputs(), w)
	fmt.Printf("permutation: %v\n", []int(p))
	if plan > 0 {
		return runPlan(net, p, plan)
	}
	out, err := net.RoutePerm(p)
	if err != nil {
		return err
	}
	printDelivery(out)
	return nil
}

// runPlan compiles the permutation once, replays it `reps` times, and prints
// the amortized cost per route — the compile-once/replay-many trade the
// PlanRouter surface exists for.
func runPlan(net bnbnet.Network, p perm.Perm, reps int) error {
	pr, ok := bnbnet.AsPlanRouter(net)
	if !ok {
		return fmt.Errorf("family %q offers no compiled-plan surface (-plan needs bnb)", net.Name())
	}
	start := time.Now()
	pl, err := pr.Compile(p)
	if err != nil {
		return err
	}
	compile := time.Since(start)
	n := len(p)
	src := make([]bnbnet.Word, n)
	for i, d := range p {
		src[i] = bnbnet.Word{Addr: d, Data: uint64(i)}
	}
	dst := make([]bnbnet.Word, n)
	if err := pr.Replay(pl, dst, src); err != nil { // warm the scratch pool
		return err
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := pr.Replay(pl, dst, src); err != nil {
			return err
		}
	}
	replayTotal := time.Since(start)
	perReplay := replayTotal / time.Duration(reps)
	amortized := (compile + replayTotal) / time.Duration(reps)
	fmt.Printf("plan: %d switch states compiled in %v\n", pl.Switches(), compile)
	fmt.Printf("replay: %d runs, %v per route\n", reps, perReplay)
	fmt.Printf("amortized (compile + %d replays): %v per route\n", reps, amortized)
	printDelivery(dst)
	return nil
}

func buildPerm(permArg, family string, m int, seed int64) (perm.Perm, error) {
	if permArg != "" {
		parts := strings.Split(permArg, ",")
		p := make(perm.Perm, len(parts))
		for i, s := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad permutation entry %q: %w", s, err)
			}
			p[i] = v
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	}
	f, err := perm.ParseFamily(family)
	if err != nil {
		return nil, err
	}
	return perm.Generate(f, m, rand.New(rand.NewSource(seed)))
}

// buildNet constructs any registered family through the registry, adding
// WithDataBits only when a width was requested so width-less families stay
// constructible with the default w = 0.
func buildNet(name string, m, w int, extra ...bnbnet.Option) (bnbnet.Network, error) {
	var opts []bnbnet.Option
	if w != 0 {
		opts = append(opts, bnbnet.WithDataBits(w))
	}
	opts = append(opts, extra...)
	return bnbnet.New(name, m, opts...)
}

func printDelivery(out []bnbnet.Word) {
	fmt.Println("delivery (output <- source):")
	for j, wd := range out {
		fmt.Printf("  output %2d <- input %2d (address %d)\n", j, wd.Data, wd.Addr)
	}
}
