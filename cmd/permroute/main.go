// Command permroute routes one permutation through a chosen network and
// prints the delivery, optionally with the stage-by-stage trace of the BNB
// radix sort.
//
//	permroute -net bnb -m 3 -perm 5,2,7,0,6,1,4,3 -trace
//	permroute -net batcher -m 4 -family bit-reversal
//	permroute -net benes -m 5 -family random -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	bnbnet "repro"
	"repro/internal/core"
	"repro/internal/perm"
)

func main() {
	var (
		netName = flag.String("net", "bnb", "network: bnb, batcher, koppelman, benes, waksman, crossbar")
		m       = flag.Int("m", 3, "network order (N = 2^m)")
		permArg = flag.String("perm", "", "comma-separated destination list (overrides -family)")
		family  = flag.String("family", "random", "permutation family when -perm is not given")
		seed    = flag.Int64("seed", 1, "seed for random permutations")
		w       = flag.Int("w", 0, "data width in bits")
		trace   = flag.Bool("trace", false, "print the per-main-stage trace (bnb only)")
	)
	flag.Parse()
	if err := run(*netName, *m, *permArg, *family, *seed, *w, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
}

func run(netName string, m int, permArg, family string, seed int64, w int, trace bool) error {
	n := 1 << uint(m)
	p, err := buildPerm(permArg, family, m, seed)
	if err != nil {
		return err
	}
	if len(p) != n {
		return fmt.Errorf("permutation has %d entries, network needs %d", len(p), n)
	}
	net, err := buildNet(netName, m, w)
	if err != nil {
		return err
	}
	fmt.Printf("network: %s, N=%d, w=%d\n", net.Name(), net.Inputs(), w)
	fmt.Printf("permutation: %v\n", []int(p))
	if trace {
		if netName != "bnb" {
			return fmt.Errorf("-trace is only available for -net bnb")
		}
		cn, err := core.New(m, w)
		if err != nil {
			return err
		}
		words := make([]bnbnet.Word, n)
		for i, d := range p {
			words[i] = bnbnet.Word{Addr: d, Data: uint64(i)}
		}
		out, snaps, err := cn.RouteTraced(words)
		if err != nil {
			return err
		}
		for s, snap := range snaps {
			label := fmt.Sprintf("after stage %d", s-1)
			if s == 0 {
				label = "network input"
			}
			addrs := make([]int, len(snap))
			for i, wd := range snap {
				addrs[i] = wd.Addr
			}
			fmt.Printf("  %-16s addresses: %v\n", label, addrs)
		}
		printDelivery(out)
		return nil
	}
	out, err := net.RoutePerm(p)
	if err != nil {
		return err
	}
	printDelivery(out)
	return nil
}

func buildPerm(permArg, family string, m int, seed int64) (perm.Perm, error) {
	if permArg != "" {
		parts := strings.Split(permArg, ",")
		p := make(perm.Perm, len(parts))
		for i, s := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad permutation entry %q: %w", s, err)
			}
			p[i] = v
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	}
	f, err := perm.ParseFamily(family)
	if err != nil {
		return nil, err
	}
	return perm.Generate(f, m, rand.New(rand.NewSource(seed)))
}

func buildNet(name string, m, w int) (bnbnet.Network, error) {
	switch name {
	case "bnb":
		return bnbnet.NewBNB(m, w)
	case "batcher":
		return bnbnet.NewBatcher(m, w)
	case "koppelman":
		return bnbnet.NewKoppelman(m, w)
	case "benes":
		return bnbnet.NewBenes(m)
	case "waksman":
		return bnbnet.NewWaksman(m)
	case "crossbar":
		return bnbnet.NewCrossbar(1 << uint(m))
	default:
		return nil, fmt.Errorf("unknown network %q", name)
	}
}

func printDelivery(out []bnbnet.Word) {
	fmt.Println("delivery (output <- source):")
	for j, wd := range out {
		fmt.Printf("  output %2d <- input %2d (address %d)\n", j, wd.Data, wd.Addr)
	}
}
