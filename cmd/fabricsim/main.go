// Command fabricsim runs the input-queued switch-fabric simulation around
// any of the permutation networks, sweeping offered load and reporting
// throughput and mean queueing delay — the system-level workload of the
// paper's motivating "switching systems". With -metrics it also attaches the
// observability sink to the switch and reports each load point's network
// passes and their latency percentiles.
//
//	fabricsim -net bnb -m 5 -traffic uniform -cycles 5000
//	fabricsim -net bnb -m 5 -traffic permutation -metrics
//	fabricsim -net batcher -m 5 -traffic hotspot -hotfrac 0.3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	bnbnet "repro"
)

func main() {
	var (
		netName = flag.String("net", "bnb", "network family: "+strings.Join(bnbnet.Families(), ", "))
		m       = flag.Int("m", 5, "network order (N = 2^m ports)")
		traffic = flag.String("traffic", "uniform", "traffic: uniform, permutation, hotspot")
		cycles  = flag.Int("cycles", 3000, "cycles per load point")
		seed    = flag.Int64("seed", 42, "random seed")
		hotfrac = flag.Float64("hotfrac", 0.3, "hotspot fraction (hotspot traffic)")
		voq     = flag.Bool("voq", false, "use virtual output queues instead of FIFO input queues")
		metrics = flag.Bool("metrics", false, "attach the metrics sink and report network-pass latencies")
	)
	flag.Parse()
	if err := run(*netName, *m, *traffic, *cycles, *seed, *hotfrac, *voq, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "fabricsim:", err)
		os.Exit(1)
	}
}

func run(netName string, m int, traffic string, cycles int, seed int64, hotfrac float64, voq, showMetrics bool) error {
	net, err := bnbnet.New(netName, m)
	if err != nil {
		return err
	}
	ports := net.Inputs()
	queueing := "FIFO"
	if voq {
		queueing = "VOQ"
	}
	fmt.Printf("fabric: %s, %d ports, %s traffic, %s queueing, %d cycles per load point\n",
		net.Name(), ports, traffic, queueing, cycles)
	loads := []float64{0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	snapshots := make([]bnbnet.MetricsSnapshot, 0, len(loads))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "offered load\tthroughput\tmean wait\tp50\tp99\tmax queue\tbacklog")
	for _, load := range loads {
		var gen bnbnet.Traffic
		switch traffic {
		case "uniform":
			gen = bnbnet.UniformTraffic{Load: load}
		case "permutation":
			gen = bnbnet.PermutationTraffic{Load: load}
		case "hotspot":
			gen = bnbnet.HotspotTraffic{Load: load, Frac: hotfrac, Target: 0}
		default:
			return fmt.Errorf("unknown traffic %q", traffic)
		}
		sink := bnbnet.NewMetrics()
		var stats bnbnet.FabricStats
		if voq {
			sw, err := bnbnet.NewVOQFabricSwitch(net)
			if err != nil {
				return err
			}
			sw.AttachMetrics(sink)
			stats, err = sw.Run(gen, cycles, rand.New(rand.NewSource(seed)))
			if err != nil {
				return err
			}
		} else {
			sw, err := bnbnet.NewFabricSwitch(net)
			if err != nil {
				return err
			}
			sw.AttachMetrics(sink)
			stats, err = sw.Run(gen, cycles, rand.New(rand.NewSource(seed)))
			if err != nil {
				return err
			}
		}
		snapshots = append(snapshots, sink.Snapshot())
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.2f\t%d\t%d\t%d\t%d\n",
			load, stats.Throughput(ports), stats.MeanWait(),
			stats.WaitPercentile(0.50), stats.WaitPercentile(0.99),
			stats.MaxQueue, stats.Backlog)
	}
	tw.Flush()
	if showMetrics {
		fmt.Println("\nnetwork-pass metrics per load point:")
		mw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(mw, "offered load\tpasses\terrors\tcells switched\tmean pass\tp99 pass\tmax pass")
		for i, load := range loads {
			s := snapshots[i]
			fmt.Fprintf(mw, "%.2f\t%d\t%d\t%d\t%v\t%v\t%v\n",
				load, s.Routes, s.Errors, s.WordsSwitched, s.MeanLatency, s.P99, s.MaxLatency)
		}
		mw.Flush()
	}
	if traffic == "uniform" && !voq {
		fmt.Println("note: FIFO input queueing saturates near 2-sqrt(2) ~ 0.586 under uniform traffic;")
		fmt.Println("      permutation traffic sustains 1.0 because the network routes any permutation;")
		fmt.Println("      re-run with -voq to lift the head-of-line limit.")
	}
	return nil
}
