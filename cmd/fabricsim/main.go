// Command fabricsim runs the input-queued switch-fabric simulation around
// any of the permutation networks, sweeping offered load and reporting
// throughput and mean queueing delay — the system-level workload of the
// paper's motivating "switching systems". With -metrics it also attaches the
// observability sink to the switch and reports each load point's network
// passes and their latency percentiles.
//
// With -chaos the network is wrapped in a fault injector striking whole
// passes with seeded transient faults, the switch runs in degraded mode —
// requeueing every failed or misdelivered cell instead of aborting — and the
// run reports eventual delivery after draining the backlog.
//
// With -planes the tool leaves the fabric loop and runs the availability
// experiment of DESIGN.md §9: K supervised redundant planes with -chaos
// injected into plane 0, versus an unsupervised single plane under the same
// fault schedule, reporting delivery rates and the supervisor's failover /
// repair / readmit counters. The run exits nonzero if the supervised stack
// drops or misroutes anything. -slow adds latency-fault chaos (stalled route
// passes) to plane 0 and -hedge arms tail-tolerant hedged routing — a fixed
// delay or "auto" to track observed latency.
//
// With -reconfig R (alongside -planes) the tool runs the hitless-rollout
// experiment of DESIGN.md §13 instead: while the request stream is in
// flight — and -chaos keeps striking plane 0 — the whole fleet is rolled
// onto freshly built planes R times via Reconfigure, pre-warming each new
// plan cache from the outgoing one. The run reports per-rollout wall time,
// the final drain latency, and the supervisor's reconfiguration counters,
// and exits nonzero if a single request is lost, failed or misrouted.
//
// With -cluster S the tool runs the multi-shard fabric experiment: S
// independent supervised shards of order m joined by edge-colored
// inter-shard exchange stages serve the request stream as one aggregate
// fabric of S·2^m ports — `-cluster 128 -m 7` demonstrates 16384 ports —
// while one shard is added and drained mid-stream to show hitless
// membership. Every delivery is verified word-for-word; the run exits
// nonzero on any loss or misroute.
//
//	fabricsim -net bnb -m 5 -traffic uniform -cycles 5000
//	fabricsim -net bnb -m 5 -traffic permutation -metrics
//	fabricsim -net batcher -m 5 -traffic hotspot -hotfrac 0.3
//	fabricsim -net bnb -m 5 -traffic permutation -cycles 1000 -chaos 0.01
//	fabricsim -net bnb -m 5 -planes 3 -chaos 0.01 -requests 10000
//	fabricsim -net bnb -m 5 -planes 3 -slow 300us -hedge auto -requests 10000
//	fabricsim -net bnb -m 5 -planes 3 -chaos 0.01 -reconfig 3 -requests 10000
//	fabricsim -net bnb -m 7 -cluster 128 -requests 2000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	bnbnet "repro"
)

func main() {
	var (
		netName   = flag.String("net", "bnb", "network family: "+strings.Join(bnbnet.Families(), ", "))
		m         = flag.Int("m", 5, "network order (N = 2^m ports)")
		traffic   = flag.String("traffic", "uniform", "traffic: uniform, permutation, hotspot")
		cycles    = flag.Int("cycles", 3000, "cycles per load point")
		seed      = flag.Int64("seed", 42, "random seed")
		hotfrac   = flag.Float64("hotfrac", 0.3, "hotspot fraction (hotspot traffic)")
		voq       = flag.Bool("voq", false, "use virtual output queues instead of FIFO input queues")
		metrics   = flag.Bool("metrics", false, "attach the metrics sink and report network-pass latencies")
		chaos     = flag.Float64("chaos", 0, "per-cycle transient fault rate; > 0 enables fault injection and degraded mode")
		chaosHeal = flag.Int("chaos-heal", 1, "cycles a chaos fault lives before healing")
		chaosSeed = flag.Int64("chaos-seed", 2026, "seed of the deterministic chaos schedule")
		planes    = flag.Int("planes", 0, "run K >= 2 supervised redundant planes (with -chaos striking plane 0) instead of the fabric loop")
		requests  = flag.Int("requests", 10000, "requests for the -planes availability run")
		hedge     = flag.String("hedge", "", `with -planes: hedged routing — a duration (e.g. "200us") for a fixed hedge delay, or "auto" to derive it from observed latency`)
		slow      = flag.Duration("slow", 0, "with -planes: latency-fault chaos on plane 0 — each struck cycle stalls a route pass by this much")
		slowRate  = flag.Float64("slow-rate", 0.1, "with -slow: per-cycle rate of the latency faults")
		reconfig  = flag.Int("reconfig", 0, "with -planes: perform R live Reconfigure rollouts while the request stream is in flight")
		cluster   = flag.Int("cluster", 0, "run S >= 2 supervised shards as one aggregate fabric of S*2^m ports instead of the fabric loop")
		warm      = flag.Int("warm", 16, "with -reconfig: hottest plans pre-warmed per rebuilt plane")
		debugAddr = flag.String("debug", "", `serve the debug bundle (metrics exposition, trace dump, pprof) on this address for the duration of the run, e.g. ":8080"`)
	)
	flag.Parse()
	// With -debug the whole run shares one sink and one tracer, exposed live
	// on the debug endpoint; the per-load-point tables then read cumulative.
	var dbg *debugState
	if *debugAddr != "" {
		var err error
		if dbg, err = startDebug(*debugAddr); err != nil {
			fmt.Fprintln(os.Stderr, "fabricsim:", err)
			os.Exit(1)
		}
		defer dbg.srv.Close()
	}
	var err error
	if *cluster > 0 {
		err = runCluster(*netName, *m, *cluster, *requests, *seed, dbg)
	} else if *planes > 0 && *reconfig > 0 {
		err = runReconfig(*netName, *m, *planes, *requests, *reconfig, *warm, *seed, *chaos, *chaosHeal, *chaosSeed, dbg)
	} else if *planes > 0 {
		err = runPlanes(*netName, *m, *planes, *requests, *seed, *chaos, *chaosHeal, *chaosSeed, *hedge, *slow, *slowRate, dbg)
	} else {
		err = run(*netName, *m, *traffic, *cycles, *seed, *hotfrac, *voq, *metrics, *chaos, *chaosHeal, *chaosSeed, dbg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fabricsim:", err)
		os.Exit(1)
	}
}

// debugState is the shared observability surface behind -debug: one metrics
// sink and one trace ring for the whole run, served over HTTP until exit.
type debugState struct {
	sink   *bnbnet.Metrics
	tracer *bnbnet.Tracer
	srv    *bnbnet.DebugServer
}

func startDebug(addr string) (*debugState, error) {
	d := &debugState{sink: bnbnet.NewMetrics(), tracer: bnbnet.NewTracer(4096)}
	srv, err := bnbnet.Serve(addr, d.sink, d.tracer)
	if err != nil {
		return nil, err
	}
	d.srv = srv
	fmt.Printf("debug: http://%s/debug/bnb/metrics (also /debug/bnb/traces, /debug/pprof/)\n", srv.Addr())
	return d, nil
}

// runCluster is the multi-shard fabric experiment: S supervised shards of
// order m are joined into one aggregate fabric of S·2^m ports, a random
// permutation stream is routed through it in three phases — the middle
// phase on a membership grown by one live AddShard, then shrunk back by a
// live RemoveShard — and every delivery is verified word-for-word. The
// run exits nonzero on any loss or misroute.
func runCluster(netName string, m, shards, requests int, seed int64, dbg *debugState) error {
	if shards < 2 {
		return fmt.Errorf("-cluster %d: need at least 2 shards", shards)
	}
	opts := []bnbnet.Option{bnbnet.WithShards(shards)}
	if dbg != nil {
		opts = append(opts, bnbnet.WithMetrics(dbg.sink), bnbnet.WithTracer(dbg.tracer))
	}
	cl, err := bnbnet.NewCluster(netName, m, opts...)
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("cluster: %s, %d shards x %d ports = %d aggregate ports, %d requests\n",
		netName, shards, 1<<uint(m), cl.Inputs(), requests)

	rng := rand.New(rand.NewSource(seed))
	var delivered, misrouted int
	var words int64
	drive := func(count int) error {
		const batchMax = 64
		n := cl.Inputs()
		for done := 0; done < count; done += batchMax {
			size := batchMax
			if count-done < size {
				size = count - done
			}
			batch := make([][]bnbnet.Word, size)
			perms := make([]bnbnet.Perm, size)
			for i := range batch {
				perms[i] = bnbnet.RandomPerm(n, rng)
				batch[i] = make([]bnbnet.Word, n)
				for j, d := range perms[i] {
					batch[i][j] = bnbnet.Word{Addr: d, Data: uint64(j)}
				}
			}
			outs, errs := cl.RouteBatch(batch)
			for i := range errs {
				if errs[i] != nil {
					return fmt.Errorf("route: %w", errs[i])
				}
				ok := true
				for j, d := range perms[i] {
					if outs[i][d].Addr != d || outs[i][d].Data != uint64(j) {
						ok = false
						break
					}
				}
				if ok {
					delivered++
					words += int64(n)
				} else {
					misrouted++
				}
			}
		}
		return nil
	}

	// Three phases: steady state, grown by a live shard, shrunk back. The
	// membership changes happen between batches, so every single request
	// must deliver — there is no client race to excuse a rejection.
	phase := requests / 3
	start := time.Now()
	if err := drive(phase); err != nil {
		return err
	}
	if _, err := cl.AddShard(context.Background()); err != nil {
		return fmt.Errorf("live AddShard: %w", err)
	}
	fmt.Printf("grown live to %d shards (%d ports) mid-stream\n", cl.Shards(), cl.Inputs())
	if err := drive(phase); err != nil {
		return err
	}
	if _, err := cl.RemoveShard(context.Background()); err != nil {
		return fmt.Errorf("live RemoveShard: %w", err)
	}
	fmt.Printf("shrunk live to %d shards (%d ports) mid-stream\n", cl.Shards(), cl.Inputs())
	if err := drive(requests - 2*phase); err != nil {
		return err
	}
	elapsed := time.Since(start)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "requests\tdelivered\tmisrouted\televated shards\telapsed\troutes/s\twords/s")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%.0f\t%.0f\n",
		requests, delivered, misrouted, cl.ShardsAdded(),
		elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds(), float64(words)/elapsed.Seconds())
	tw.Flush()
	if err := cl.Drain(context.Background()); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if delivered != requests || misrouted != 0 {
		return fmt.Errorf("cluster fabric delivered %d/%d requests (%d misrouted); reproduce with -seed %d",
			delivered, requests, misrouted, seed)
	}
	fmt.Println("every request was delivered word-for-word across the live membership changes.")
	return nil
}

// runPlanes is the availability experiment: the same request stream is
// offered to an unsupervised single plane carrying the chaos plan and to a
// K-plane supervised stack with the identical plan striking plane 0, and
// the two delivery rates are compared. The supervised run must be perfect.
func runPlanes(netName string, m, k, requests int, seed int64, chaos float64, chaosHeal int, chaosSeed int64, hedge string, slow time.Duration, slowRate float64, dbg *debugState) error {
	if k < 2 {
		return fmt.Errorf("-planes %d: need at least 2 planes", k)
	}
	var hedgeOpt bnbnet.Option
	switch {
	case hedge == "":
	case hedge == "auto":
		hedgeOpt = bnbnet.WithHedgeAuto()
	default:
		d, err := time.ParseDuration(hedge)
		if err != nil || d <= 0 {
			return fmt.Errorf(`-hedge %q: want a positive duration or "auto"`, hedge)
		}
		hedgeOpt = bnbnet.WithHedge(d)
	}
	var plan *bnbnet.FaultPlan
	if chaos > 0 || slow > 0 {
		plan = &bnbnet.FaultPlan{ChaosRate: chaos, ChaosHeal: chaosHeal, Seed: chaosSeed}
		if slow > 0 {
			plan.SlowRate = slowRate
			plan.SlowDelay = slow
			plan.SlowHeal = chaosHeal
		}
	}
	fmt.Printf("planes: %s, order %d (%d ports), %d supervised planes, %d requests\n",
		netName, m, 1<<uint(m), k, requests)
	if chaos > 0 {
		fmt.Printf("chaos: transient fault rate %v per cycle on plane 0, heal %d, seed %d\n",
			chaos, chaosHeal, chaosSeed)
	}
	if slow > 0 {
		fmt.Printf("slow chaos: +%v per struck pass on plane 0, rate %v per cycle, heal %d, seed %d\n",
			slow, slowRate, chaosHeal, chaosSeed)
	}
	if hedgeOpt != nil {
		fmt.Printf("hedging: %s\n", hedge)
	}

	type outcome struct {
		delivered, failed, misrouted int
		elapsed                      time.Duration
	}
	drive := func(route func([]bnbnet.Perm) ([][]bnbnet.Word, []error)) outcome {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << uint(m)
		var out outcome
		start := time.Now()
		const batch = 256
		for done := 0; done < requests; done += batch {
			size := batch
			if requests-done < size {
				size = requests - done
			}
			ps := make([]bnbnet.Perm, size)
			for i := range ps {
				ps[i] = bnbnet.RandomPerm(n, rng)
			}
			outs, errs := route(ps)
			for i := range errs {
				if errs[i] != nil {
					out.failed++
					if errors.Is(errs[i], bnbnet.ErrMisrouted) {
						out.misrouted++
					}
					continue
				}
				ok := true
				for j, w := range outs[i] {
					if w.Addr != j {
						ok = false
						break
					}
				}
				if ok {
					out.delivered++
				} else {
					out.misrouted++
				}
			}
		}
		out.elapsed = time.Since(start)
		return out
	}

	// Baseline: one plane, no supervision, the chaos plan striking it
	// directly. Failures surface to the caller.
	var baseOpts []bnbnet.Option
	if plan != nil {
		baseOpts = append(baseOpts, bnbnet.WithFaults(plan))
	}
	baseNet, err := bnbnet.New(netName, m, baseOpts...)
	if err != nil {
		return err
	}
	baseEng, err := bnbnet.NewEngine(baseNet, bnbnet.WithWorkers(4))
	if err != nil {
		return err
	}
	base := drive(baseEng.RoutePermBatch)
	if err := baseEng.Close(); err != nil {
		return err
	}

	// Supervised: K planes, the same plan striking plane 0 only.
	supOpts := []bnbnet.Option{bnbnet.WithPlanes(k), bnbnet.WithWorkers(4)}
	if plan != nil {
		supOpts = append(supOpts, bnbnet.WithPlaneFaults(0, plan))
	}
	if hedgeOpt != nil {
		supOpts = append(supOpts, hedgeOpt)
	}
	if dbg != nil {
		supOpts = append(supOpts, bnbnet.WithMetrics(dbg.sink), bnbnet.WithTracer(dbg.tracer))
	}
	sup, err := bnbnet.NewSupervised(netName, m, supOpts...)
	if err != nil {
		return err
	}
	supOut := drive(sup.RoutePermBatch)
	failovers, repairs, readmits := sup.Failovers(), sup.Repairs(), sup.Readmits()
	hedges, hedgeWins, slowQuars := sup.Hedges(), sup.HedgeWins(), sup.SlowQuarantines()
	states := sup.PlaneStates()
	if err := sup.Close(); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\trequests\tdelivered\tfailed\tmisrouted\tavailability\telapsed")
	fmt.Fprintf(tw, "single plane\t%d\t%d\t%d\t%d\t%.4f\t%v\n",
		requests, base.delivered, base.failed, base.misrouted,
		float64(base.delivered)/float64(requests), base.elapsed.Round(time.Millisecond))
	fmt.Fprintf(tw, "supervised x%d\t%d\t%d\t%d\t%d\t%.4f\t%v\n",
		k, requests, supOut.delivered, supOut.failed, supOut.misrouted,
		float64(supOut.delivered)/float64(requests), supOut.elapsed.Round(time.Millisecond))
	tw.Flush()
	fmt.Printf("supervisor: failovers=%d repairs=%d readmits=%d states=%v\n",
		failovers, repairs, readmits, states)
	if hedgeOpt != nil || slow > 0 {
		fmt.Printf("tail: hedges=%d hedge_wins=%d slow_quarantines=%d\n", hedges, hedgeWins, slowQuars)
	}
	if supOut.delivered != requests || supOut.misrouted != 0 {
		return fmt.Errorf("supervised stack delivered %d/%d requests (%d misrouted); redundancy must absorb a single faulty plane (reproduce with -seed %d -chaos-seed %d)",
			supOut.delivered, requests, supOut.misrouted, seed, chaosSeed)
	}
	if plan != nil {
		fmt.Println("the supervised stack delivered every request despite the faulty plane.")
	} else {
		fmt.Println("the supervised stack delivered every request.")
	}
	return nil
}

// runReconfig is the hitless-rollout experiment of DESIGN.md §13: a K-plane
// supervised stack serves the request stream (with -chaos striking plane 0)
// while the whole fleet is rolled onto freshly built planes R times, each
// rebuilt plan cache pre-warmed from its predecessor's hottest plans. The
// run must be perfect — every request delivered to its addressed output —
// or the tool exits nonzero.
func runReconfig(netName string, m, k, requests, rollouts, warmTopK int, seed int64, chaos float64, chaosHeal int, chaosSeed int64, dbg *debugState) error {
	if k < 2 {
		return fmt.Errorf("-planes %d: need at least 2 planes", k)
	}
	fmt.Printf("reconfig: %s, order %d (%d ports), %d supervised planes, %d requests, %d live rollouts, warm top-%d\n",
		netName, m, 1<<uint(m), k, requests, rollouts, warmTopK)
	supOpts := []bnbnet.Option{
		bnbnet.WithPlanes(k), bnbnet.WithWorkers(4),
		bnbnet.WithHealthInterval(time.Millisecond),
		bnbnet.WithPlanCache(256),
	}
	if chaos > 0 {
		supOpts = append(supOpts, bnbnet.WithPlaneFaults(0, &bnbnet.FaultPlan{
			ChaosRate: chaos, ChaosHeal: chaosHeal, Seed: chaosSeed,
		}))
		fmt.Printf("chaos: transient fault rate %v per cycle on plane 0, heal %d, seed %d\n",
			chaos, chaosHeal, chaosSeed)
	}
	sink := bnbnet.NewMetrics()
	if dbg != nil {
		sink = dbg.sink
		supOpts = append(supOpts, bnbnet.WithTracer(dbg.tracer))
	}
	supOpts = append(supOpts, bnbnet.WithMetrics(sink))
	sup, err := bnbnet.NewSupervised(netName, m, supOpts...)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	// The rollout goroutine waits for the first batch to land (so caches hold
	// real traffic to warm from), then runs the R rollouts back to back while
	// the main loop keeps the request stream flowing.
	started := make(chan struct{})
	type rolloutResult struct {
		durations []time.Duration
		err       error
	}
	rolloutCh := make(chan rolloutResult, 1)
	go func() {
		<-started
		res := rolloutResult{durations: make([]time.Duration, 0, rollouts)}
		for i := 0; i < rollouts; i++ {
			begin := time.Now()
			if err := sup.Reconfigure(ctx, bnbnet.ReconfigWarmPlans(warmTopK)); err != nil {
				res.err = fmt.Errorf("rollout %d: %w", i+1, err)
				break
			}
			res.durations = append(res.durations, time.Since(begin))
		}
		rolloutCh <- res
	}()

	rng := rand.New(rand.NewSource(seed))
	n := 1 << uint(m)
	var delivered, failed, misrouted int
	var res *rolloutResult
	start := time.Now()
	const batch = 250
	for done := 0; done < requests || res == nil; done += batch {
		size := batch
		if requests-done < size && requests-done > 0 {
			size = requests - done
		}
		ps := make([]bnbnet.Perm, size)
		for i := range ps {
			ps[i] = bnbnet.RandomPerm(n, rng)
		}
		outs, errs := sup.RoutePermBatch(ps)
		for i := range errs {
			if errs[i] != nil {
				failed++
				if errors.Is(errs[i], bnbnet.ErrMisrouted) {
					misrouted++
				}
				continue
			}
			ok := true
			for j, w := range outs[i] {
				if w.Addr != j {
					ok = false
					break
				}
			}
			if ok {
				delivered++
			} else {
				misrouted++
			}
		}
		if done == 0 {
			close(started)
		}
		if res == nil {
			select {
			case r := <-rolloutCh:
				res = &r
			default:
			}
		}
	}
	elapsed := time.Since(start)
	if res.err != nil {
		sup.Close()
		return res.err
	}

	// Drain latency: how long the lifecycle takes to stop admission and land
	// every in-flight ticket once the stream ends.
	drainStart := time.Now()
	if err := sup.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	drainLatency := time.Since(drainStart)
	snap := sink.Snapshot()
	reconfigs, warms := snap.Reconfigs, snap.PlanWarms
	failovers, readmits := sup.Failovers(), sup.Readmits()
	states := sup.PlaneStates()
	if err := sup.Close(); err != nil {
		return err
	}

	total := delivered + failed + misrouted
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "requests\tdelivered\tfailed\tmisrouted\tavailability\telapsed")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.4f\t%v\n",
		total, delivered, failed, misrouted,
		float64(delivered)/float64(total), elapsed.Round(time.Millisecond))
	tw.Flush()
	for i, d := range res.durations {
		fmt.Printf("rollout %d: %v\n", i+1, d.Round(time.Microsecond))
	}
	fmt.Printf("drain latency: %v\n", drainLatency.Round(time.Microsecond))
	fmt.Printf("supervisor: reconfigs=%d plan warms=%d failovers=%d readmits=%d states=%v\n",
		reconfigs, warms, failovers, readmits, states)
	if delivered != total || misrouted != 0 || reconfigs != int64(rollouts) {
		return fmt.Errorf("rollout was not hitless: %d/%d delivered, %d misrouted, %d/%d reconfigurations (reproduce with -seed %d -chaos-seed %d)",
			delivered, total, misrouted, reconfigs, rollouts, seed, chaosSeed)
	}
	fmt.Printf("every request was delivered across %d live rollouts; the reconfiguration was hitless.\n", rollouts)
	return nil
}

func run(netName string, m int, traffic string, cycles int, seed int64, hotfrac float64, voq, showMetrics bool, chaos float64, chaosHeal int, chaosSeed int64, dbg *debugState) error {
	var opts []bnbnet.Option
	if chaos > 0 {
		if voq {
			return fmt.Errorf("-chaos requires the FIFO switch; drop -voq (degraded mode requeues at the input queues)")
		}
		opts = append(opts, bnbnet.WithFaults(&bnbnet.FaultPlan{
			ChaosRate: chaos,
			ChaosHeal: chaosHeal,
			Seed:      chaosSeed,
		}))
	}
	net, err := bnbnet.New(netName, m, opts...)
	if err != nil {
		return err
	}
	ports := net.Inputs()
	queueing := "FIFO"
	if voq {
		queueing = "VOQ"
	}
	fmt.Printf("fabric: %s, %d ports, %s traffic, %s queueing, %d cycles per load point\n",
		net.Name(), ports, traffic, queueing, cycles)
	if chaos > 0 {
		fmt.Printf("chaos: transient fault rate %v per cycle, heal %d, seed %d; degraded mode on\n",
			chaos, chaosHeal, chaosSeed)
	}
	loads := []float64{0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	snapshots := make([]bnbnet.MetricsSnapshot, 0, len(loads))
	type chaosRow struct {
		load                                float64
		offered, delivered, requeued, fails int
		drain                               int
		eventual                            float64
	}
	var chaosRows []chaosRow
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "offered load\tthroughput\tmean wait\tp50\tp99\tmax queue\tbacklog")
	for _, load := range loads {
		gen, err := makeTraffic(traffic, load, hotfrac)
		if err != nil {
			return err
		}
		sink := bnbnet.NewMetrics()
		if dbg != nil {
			sink = dbg.sink
		}
		fopts := []bnbnet.Option{bnbnet.WithMetrics(sink)}
		if voq {
			fopts = append(fopts, bnbnet.WithVOQ())
		} else if chaos > 0 {
			fopts = append(fopts, bnbnet.WithDegraded())
		}
		sw, err := bnbnet.NewFabric(net, fopts...)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(seed))
		stats, err := sw.Run(gen, cycles, rng)
		if err != nil {
			return err
		}
		if !voq && chaos > 0 {
			// Drain with idle arrivals until every requeued cell lands.
			row := chaosRow{
				load: load, offered: stats.Offered, delivered: stats.Delivered,
				requeued: stats.Requeued, fails: stats.FailedPasses,
			}
			idle, err := makeTraffic(traffic, 0, hotfrac)
			if err != nil {
				return err
			}
			for chunk := 0; chunk < 20; chunk++ {
				d, err := sw.Run(idle, cycles, rng)
				if err != nil {
					return err
				}
				row.delivered += d.Delivered
				row.requeued += d.Requeued
				row.fails += d.FailedPasses
				row.drain += cycles
				if d.Backlog == 0 {
					break
				}
			}
			if row.offered > 0 {
				row.eventual = float64(row.delivered) / float64(row.offered)
			} else {
				row.eventual = 1
			}
			chaosRows = append(chaosRows, row)
		}
		snapshots = append(snapshots, sink.Snapshot())
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.2f\t%d\t%d\t%d\t%d\n",
			load, stats.Throughput(ports), stats.MeanWait(),
			stats.WaitPercentile(0.50), stats.WaitPercentile(0.99),
			stats.MaxQueue, stats.Backlog)
	}
	tw.Flush()
	if chaos > 0 {
		fmt.Println("\neventual delivery under chaos (after backlog drain):")
		cw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(cw, "offered load\toffered\tdelivered\trequeued\tfailed passes\tdrain cycles\teventual delivery")
		allDelivered := true
		for _, row := range chaosRows {
			fmt.Fprintf(cw, "%.2f\t%d\t%d\t%d\t%d\t%d\t%.4f\n",
				row.load, row.offered, row.delivered, row.requeued, row.fails, row.drain, row.eventual)
			if row.delivered != row.offered {
				allDelivered = false
			}
		}
		cw.Flush()
		if fn, ok := net.(*bnbnet.FaultyNetwork); ok {
			fmt.Printf("injected faulty passes: %d\n", fn.InjectedPasses())
		}
		if allDelivered {
			fmt.Println("every offered cell was eventually delivered to its addressed output.")
		} else {
			return fmt.Errorf("some cells were never delivered; see the table above (reproduce with -seed %d -chaos-seed %d)", seed, chaosSeed)
		}
	}
	if showMetrics {
		fmt.Println("\nnetwork-pass metrics per load point:")
		mw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(mw, "offered load\tpasses\terrors\tcells switched\tmean pass\tp99 pass\tmax pass")
		for i, load := range loads {
			s := snapshots[i]
			fmt.Fprintf(mw, "%.2f\t%d\t%d\t%d\t%v\t%v\t%v\n",
				load, s.Routes, s.Errors, s.WordsSwitched, s.MeanLatency, s.P99, s.MaxLatency)
		}
		mw.Flush()
	}
	if traffic == "uniform" && !voq {
		fmt.Println("note: FIFO input queueing saturates near 2-sqrt(2) ~ 0.586 under uniform traffic;")
		fmt.Println("      permutation traffic sustains 1.0 because the network routes any permutation;")
		fmt.Println("      re-run with -voq to lift the head-of-line limit.")
	}
	return nil
}

// makeTraffic builds the named traffic generator at the given offered load.
func makeTraffic(traffic string, load, hotfrac float64) (bnbnet.Traffic, error) {
	switch traffic {
	case "uniform":
		return bnbnet.UniformTraffic{Load: load}, nil
	case "permutation":
		return bnbnet.PermutationTraffic{Load: load}, nil
	case "hotspot":
		return bnbnet.HotspotTraffic{Load: load, Frac: hotfrac, Target: 0}, nil
	default:
		return nil, fmt.Errorf("unknown traffic %q", traffic)
	}
}
