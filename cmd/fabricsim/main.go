// Command fabricsim runs the input-queued switch-fabric simulation around
// any of the permutation networks, sweeping offered load and reporting
// throughput and mean queueing delay — the system-level workload of the
// paper's motivating "switching systems". With -metrics it also attaches the
// observability sink to the switch and reports each load point's network
// passes and their latency percentiles.
//
// With -chaos the network is wrapped in a fault injector striking whole
// passes with seeded transient faults, the switch runs in degraded mode —
// requeueing every failed or misdelivered cell instead of aborting — and the
// run reports eventual delivery after draining the backlog.
//
//	fabricsim -net bnb -m 5 -traffic uniform -cycles 5000
//	fabricsim -net bnb -m 5 -traffic permutation -metrics
//	fabricsim -net batcher -m 5 -traffic hotspot -hotfrac 0.3
//	fabricsim -net bnb -m 5 -traffic permutation -cycles 1000 -chaos 0.01
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	bnbnet "repro"
)

func main() {
	var (
		netName   = flag.String("net", "bnb", "network family: "+strings.Join(bnbnet.Families(), ", "))
		m         = flag.Int("m", 5, "network order (N = 2^m ports)")
		traffic   = flag.String("traffic", "uniform", "traffic: uniform, permutation, hotspot")
		cycles    = flag.Int("cycles", 3000, "cycles per load point")
		seed      = flag.Int64("seed", 42, "random seed")
		hotfrac   = flag.Float64("hotfrac", 0.3, "hotspot fraction (hotspot traffic)")
		voq       = flag.Bool("voq", false, "use virtual output queues instead of FIFO input queues")
		metrics   = flag.Bool("metrics", false, "attach the metrics sink and report network-pass latencies")
		chaos     = flag.Float64("chaos", 0, "per-cycle transient fault rate; > 0 enables fault injection and degraded mode")
		chaosHeal = flag.Int("chaos-heal", 1, "cycles a chaos fault lives before healing")
		chaosSeed = flag.Int64("chaos-seed", 2026, "seed of the deterministic chaos schedule")
	)
	flag.Parse()
	if err := run(*netName, *m, *traffic, *cycles, *seed, *hotfrac, *voq, *metrics, *chaos, *chaosHeal, *chaosSeed); err != nil {
		fmt.Fprintln(os.Stderr, "fabricsim:", err)
		os.Exit(1)
	}
}

func run(netName string, m int, traffic string, cycles int, seed int64, hotfrac float64, voq, showMetrics bool, chaos float64, chaosHeal int, chaosSeed int64) error {
	var opts []bnbnet.Option
	if chaos > 0 {
		if voq {
			return fmt.Errorf("-chaos requires the FIFO switch; drop -voq (degraded mode requeues at the input queues)")
		}
		opts = append(opts, bnbnet.WithFaults(&bnbnet.FaultPlan{
			ChaosRate: chaos,
			ChaosHeal: chaosHeal,
			Seed:      chaosSeed,
		}))
	}
	net, err := bnbnet.New(netName, m, opts...)
	if err != nil {
		return err
	}
	ports := net.Inputs()
	queueing := "FIFO"
	if voq {
		queueing = "VOQ"
	}
	fmt.Printf("fabric: %s, %d ports, %s traffic, %s queueing, %d cycles per load point\n",
		net.Name(), ports, traffic, queueing, cycles)
	if chaos > 0 {
		fmt.Printf("chaos: transient fault rate %v per cycle, heal %d, seed %d; degraded mode on\n",
			chaos, chaosHeal, chaosSeed)
	}
	loads := []float64{0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	snapshots := make([]bnbnet.MetricsSnapshot, 0, len(loads))
	type chaosRow struct {
		load                                float64
		offered, delivered, requeued, fails int
		drain                               int
		eventual                            float64
	}
	var chaosRows []chaosRow
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "offered load\tthroughput\tmean wait\tp50\tp99\tmax queue\tbacklog")
	for _, load := range loads {
		gen, err := makeTraffic(traffic, load, hotfrac)
		if err != nil {
			return err
		}
		sink := bnbnet.NewMetrics()
		var stats bnbnet.FabricStats
		if voq {
			sw, err := bnbnet.NewVOQFabricSwitch(net)
			if err != nil {
				return err
			}
			sw.AttachMetrics(sink)
			stats, err = sw.Run(gen, cycles, rand.New(rand.NewSource(seed)))
			if err != nil {
				return err
			}
		} else {
			sw, err := bnbnet.NewFabricSwitch(net)
			if err != nil {
				return err
			}
			sw.AttachMetrics(sink)
			if chaos > 0 {
				sw.SetDegraded(true)
			}
			rng := rand.New(rand.NewSource(seed))
			stats, err = sw.Run(gen, cycles, rng)
			if err != nil {
				return err
			}
			if chaos > 0 {
				// Drain with idle arrivals until every requeued cell lands.
				row := chaosRow{
					load: load, offered: stats.Offered, delivered: stats.Delivered,
					requeued: stats.Requeued, fails: stats.FailedPasses,
				}
				idle, err := makeTraffic(traffic, 0, hotfrac)
				if err != nil {
					return err
				}
				for chunk := 0; chunk < 20; chunk++ {
					d, err := sw.Run(idle, cycles, rng)
					if err != nil {
						return err
					}
					row.delivered += d.Delivered
					row.requeued += d.Requeued
					row.fails += d.FailedPasses
					row.drain += cycles
					if d.Backlog == 0 {
						break
					}
				}
				if row.offered > 0 {
					row.eventual = float64(row.delivered) / float64(row.offered)
				} else {
					row.eventual = 1
				}
				chaosRows = append(chaosRows, row)
			}
		}
		snapshots = append(snapshots, sink.Snapshot())
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.2f\t%d\t%d\t%d\t%d\n",
			load, stats.Throughput(ports), stats.MeanWait(),
			stats.WaitPercentile(0.50), stats.WaitPercentile(0.99),
			stats.MaxQueue, stats.Backlog)
	}
	tw.Flush()
	if chaos > 0 {
		fmt.Println("\neventual delivery under chaos (after backlog drain):")
		cw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(cw, "offered load\toffered\tdelivered\trequeued\tfailed passes\tdrain cycles\teventual delivery")
		allDelivered := true
		for _, row := range chaosRows {
			fmt.Fprintf(cw, "%.2f\t%d\t%d\t%d\t%d\t%d\t%.4f\n",
				row.load, row.offered, row.delivered, row.requeued, row.fails, row.drain, row.eventual)
			if row.delivered != row.offered {
				allDelivered = false
			}
		}
		cw.Flush()
		if fn, ok := net.(*bnbnet.FaultyNetwork); ok {
			fmt.Printf("injected faulty passes: %d\n", fn.InjectedPasses())
		}
		if allDelivered {
			fmt.Println("every offered cell was eventually delivered to its addressed output.")
		} else {
			fmt.Println("WARNING: some cells were never delivered; see the table above.")
		}
	}
	if showMetrics {
		fmt.Println("\nnetwork-pass metrics per load point:")
		mw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(mw, "offered load\tpasses\terrors\tcells switched\tmean pass\tp99 pass\tmax pass")
		for i, load := range loads {
			s := snapshots[i]
			fmt.Fprintf(mw, "%.2f\t%d\t%d\t%d\t%v\t%v\t%v\n",
				load, s.Routes, s.Errors, s.WordsSwitched, s.MeanLatency, s.P99, s.MaxLatency)
		}
		mw.Flush()
	}
	if traffic == "uniform" && !voq {
		fmt.Println("note: FIFO input queueing saturates near 2-sqrt(2) ~ 0.586 under uniform traffic;")
		fmt.Println("      permutation traffic sustains 1.0 because the network routes any permutation;")
		fmt.Println("      re-run with -voq to lift the head-of-line limit.")
	}
	return nil
}

// makeTraffic builds the named traffic generator at the given offered load.
func makeTraffic(traffic string, load, hotfrac float64) (bnbnet.Traffic, error) {
	switch traffic {
	case "uniform":
		return bnbnet.UniformTraffic{Load: load}, nil
	case "permutation":
		return bnbnet.PermutationTraffic{Load: load}, nil
	case "hotspot":
		return bnbnet.HotspotTraffic{Load: load, Frac: hotfrac, Target: 0}, nil
	default:
		return nil, fmt.Errorf("unknown traffic %q", traffic)
	}
}
