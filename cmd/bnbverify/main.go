// Command bnbverify cross-checks every registered network family: it routes
// the sweep batteries (exhaustive for N <= 8, the full BPC class for m <= 4,
// structured families, seeded random draws, adversarial hill climbs) through
// all families at once, compares the outputs word-for-word against the first
// family, and then runs the metamorphic relations (inverse composition,
// shuffle conjugation, and the Definition-2 stage invariant for networks
// that trace) on each family alone. Any divergence prints the offending
// permutation and exits nonzero, so `make check` and CI can gate on it.
//
// Usage:
//
//	bnbverify [-m 3 | -maxm 4] [-families bnb,batcher] [-trials 100]
//	          [-bpc 50] [-adversarial 2] [-seed 1] [-v]
//	bnbverify -cluster [-shards 4] [-m 2 | -maxm 3] [-families bnb] ...
//
// In -cluster mode each order is verified as a multi-shard fabric: a
// cluster of -shards supervised shards, each a network of order m, is
// cross-checked word-for-word against one monolithic network of the
// aggregate order (shards·2^m ports) over the same batteries.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	bnbnet "repro"
)

func main() {
	var (
		m           = flag.Int("m", 0, "verify a single order m (N = 2^m ports)")
		maxm        = flag.Int("maxm", 4, "verify every order 1..maxm (ignored when -m is set)")
		familiesArg = flag.String("families", "", "comma-separated families to cross-check (default: all registered)")
		trials      = flag.Int("trials", 100, "seeded random permutations per order (negative disables)")
		bpc         = flag.Int("bpc", 50, "sampled BPC permutations per order when the class is too large to enumerate (negative disables)")
		adversarial = flag.Int("adversarial", 2, "adversarial hill climbs per order (negative disables)")
		seed        = flag.Int64("seed", 1, "seed for the random and adversarial batteries")
		verbose     = flag.Bool("v", false, "print every failure, not just the summary")
		cluster     = flag.Bool("cluster", false, "verify multi-shard cluster fabrics against the monolithic aggregate")
		shards      = flag.Int("shards", 4, "shard count for -cluster (power of two)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "bnbverify: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var families []string
	if *familiesArg != "" {
		for _, f := range strings.Split(*familiesArg, ",") {
			if f = strings.TrimSpace(f); f != "" {
				families = append(families, f)
			}
		}
	}
	orders := []int{*m}
	if *m <= 0 {
		orders = orders[:0]
		for o := 1; o <= *maxm; o++ {
			orders = append(orders, o)
		}
	}
	if len(orders) == 0 {
		fmt.Fprintln(os.Stderr, "bnbverify: no orders to verify (set -m or -maxm)")
		os.Exit(2)
	}

	opts := bnbnet.CheckOptions{
		RandomTrials:      *trials,
		BPCTrials:         *bpc,
		AdversarialClimbs: *adversarial,
		Seed:              *seed,
	}
	clusterFamilies := families
	if len(clusterFamilies) == 0 {
		clusterFamilies = []string{"bnb"}
	}
	failed := false
	for _, order := range orders {
		var report bnbnet.CheckReport
		var err error
		label := fmt.Sprintf("m=%d N=%d", order, 1<<uint(order))
		if *cluster {
			for _, f := range clusterFamilies {
				var r bnbnet.CheckReport
				r, err = bnbnet.VerifyCluster(f, *shards, order, opts)
				if err != nil {
					break
				}
				report.Merge(r)
			}
			label = fmt.Sprintf("cluster %d×(m=%d) N=%d", *shards, order, *shards<<uint(order))
		} else {
			report, err = bnbnet.Verify(families, order, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bnbverify: m=%d: %v\n", order, err)
			os.Exit(1)
		}
		status := "ok"
		if !report.OK() {
			status = fmt.Sprintf("FAIL (%d divergences)", len(report.Failures))
			failed = true
		}
		scope := "sampled"
		switch {
		case report.ExhaustiveDone:
			scope = "exhaustive N!"
		case report.BPCExhaustive:
			scope = "full BPC class"
		}
		fmt.Printf("%s: %d checks (%s): %s\n", label, report.Checked, scope, status)
		if !report.OK() {
			failures := report.Failures
			if !*verbose && len(failures) > 3 {
				failures = failures[:3]
			}
			for _, f := range failures {
				fmt.Printf("  %s\n", f)
			}
			if n := len(report.Failures) - len(failures); n > 0 {
				fmt.Printf("  ... and %d more (rerun with -v)\n", n)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
