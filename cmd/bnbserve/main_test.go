package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	bnbnet "repro"
)

func startTestServer(t *testing.T, cfg config) *server {
	t.Helper()
	if cfg.family == "" {
		cfg.family = "bnb"
	}
	if cfg.httpAddr == "" {
		cfg.httpAddr = "127.0.0.1:0"
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	s.start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil && !t.Failed() {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

func getInfo(t *testing.T, base string) infoResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/info")
	if err != nil {
		t.Fatalf("GET /v1/info: %v", err)
	}
	defer resp.Body.Close()
	var info infoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode info: %v", err)
	}
	return info
}

func postRoute(base string, p []int) (int, routeResponse, error) {
	body, _ := json.Marshal(routeRequest{Perm: p})
	resp, err := http.Post(base+"/v1/route", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, routeResponse{}, err
	}
	defer resp.Body.Close()
	var rr routeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return resp.StatusCode, rr, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, rr, nil
}

// checkDelivery asserts the canonical correctness relation: output p[i]
// received input i's word.
func checkDelivery(p []int, sources []int) error {
	if len(sources) != len(p) {
		return fmt.Errorf("%d sources for %d ports", len(sources), len(p))
	}
	for i, d := range p {
		if sources[d] != i {
			return fmt.Errorf("output %d received input %d, want %d", d, sources[d], i)
		}
	}
	return nil
}

func TestHTTPRoute(t *testing.T) {
	s := startTestServer(t, config{m: 3, shards: 2})
	base := "http://" + s.HTTPAddr()

	info := getInfo(t, base)
	if info.Inputs != 16 || info.Shards != 2 || info.ShardOrder != 3 || info.Family != "bnb" {
		t.Fatalf("info = %+v, want 2 bnb shards of order 3", info)
	}

	rng := rand.New(rand.NewSource(7))
	p := bnbnet.RandomPerm(info.Inputs, rng)
	status, rr, err := postRoute(base, p)
	if err != nil || status != http.StatusOK {
		t.Fatalf("route: status %d err %v", status, err)
	}
	if err := checkDelivery(p, rr.Sources); err != nil {
		t.Fatal(err)
	}

	// A non-permutation is semantically invalid.
	bad := make([]int, info.Inputs)
	if status, _, _ = postRoute(base, bad); status != http.StatusUnprocessableEntity {
		t.Fatalf("non-permutation: status %d, want 422", status)
	}
	// A stale size is a membership conflict.
	if status, _, _ = postRoute(base, bnbnet.RandomPerm(8, rng)); status != http.StatusConflict {
		t.Fatalf("wrong size: status %d, want 409", status)
	}
	// Stats round-trips as JSON.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: %v status %v", err, resp.StatusCode)
	}
	var st bnbnet.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if st.Kind != "cluster" || len(st.Shards) != 2 {
		t.Fatalf("stats = kind %q with %d shards, want cluster/2", st.Kind, len(st.Shards))
	}
}

func TestDebugMount(t *testing.T) {
	s := startTestServer(t, config{m: 3, shards: 2, debug: true})
	base := "http://" + s.HTTPAddr()
	resp, err := http.Get(base + "/debug/bnb/metrics")
	if err != nil {
		t.Fatalf("GET /debug/bnb/metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug metrics status %d", resp.StatusCode)
	}
}

// tcpClient is a minimal client for the binary protocol.
type tcpClient struct{ conn net.Conn }

func dialTCP(t *testing.T, addr string) *tcpClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return &tcpClient{conn: conn}
}

func (c *tcpClient) info() (inputs, shards int, err error) {
	if _, err = c.conn.Write([]byte{opInfo}); err != nil {
		return
	}
	var resp [9]byte
	if _, err = io.ReadFull(c.conn, resp[:1]); err != nil {
		return
	}
	if resp[0] != tcpOK {
		err = fmt.Errorf("info status %d", resp[0])
		return
	}
	if _, err = io.ReadFull(c.conn, resp[1:]); err != nil {
		return
	}
	return int(binary.BigEndian.Uint32(resp[1:5])), int(binary.BigEndian.Uint32(resp[5:9])), nil
}

// route returns (status, sources, transport error).
func (c *tcpClient) route(p []int) (byte, []int, error) {
	frame := make([]byte, 5+4*len(p))
	frame[0] = opRoute
	binary.BigEndian.PutUint32(frame[1:5], uint32(len(p)))
	for i, d := range p {
		binary.BigEndian.PutUint32(frame[5+4*i:], uint32(d))
	}
	if _, err := c.conn.Write(frame); err != nil {
		return 0, nil, err
	}
	var status [1]byte
	if _, err := io.ReadFull(c.conn, status[:]); err != nil {
		return 0, nil, err
	}
	if status[0] != tcpOK {
		return status[0], nil, nil
	}
	raw := make([]byte, 4*len(p))
	if _, err := io.ReadFull(c.conn, raw); err != nil {
		return 0, nil, err
	}
	sources := make([]int, len(p))
	for i := range sources {
		sources[i] = int(binary.BigEndian.Uint32(raw[4*i:]))
	}
	return tcpOK, sources, nil
}

func TestTCPRoute(t *testing.T) {
	s := startTestServer(t, config{m: 3, shards: 2, tcpAddr: "127.0.0.1:0"})
	c := dialTCP(t, s.TCPAddr())

	inputs, shards, err := c.info()
	if err != nil || inputs != 16 || shards != 2 {
		t.Fatalf("info = %d inputs, %d shards, err %v; want 16/2", inputs, shards, err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		p := bnbnet.RandomPerm(inputs, rng)
		status, sources, err := c.route(p)
		if err != nil || status != tcpOK {
			t.Fatalf("route %d: status %d err %v", i, status, err)
		}
		if err := checkDelivery(p, sources); err != nil {
			t.Fatal(err)
		}
	}
	// A non-permutation gets a clean typed status on the same connection.
	status, _, err := c.route(make([]int, inputs))
	if err != nil || status != tcpNotPerm {
		t.Fatalf("non-permutation: status %d err %v, want %d", status, err, tcpNotPerm)
	}
	// The connection survives the rejection.
	p := bnbnet.RandomPerm(inputs, rng)
	if status, sources, err := c.route(p); err != nil || status != tcpOK || checkDelivery(p, sources) != nil {
		t.Fatalf("route after rejection failed: status %d err %v", status, err)
	}
}

// TestLiveMembership is the serving acceptance: HTTP and TCP clients hammer
// the fabric while shards are added and drained over the admin API. Every
// accepted request must deliver word-for-word; stale-size conflicts are the
// only failures allowed, and nothing may be lost or misrouted.
func TestLiveMembership(t *testing.T) {
	s := startTestServer(t, config{m: 3, shards: 2, tcpAddr: "127.0.0.1:0"})
	base := "http://" + s.HTTPAddr()

	var stop atomic.Bool
	var routed, conflicts atomic.Int64
	var wg sync.WaitGroup

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				info := getInfo(t, base)
				p := bnbnet.RandomPerm(info.Inputs, rng)
				status, rr, err := postRoute(base, p)
				if err != nil {
					t.Errorf("http route: %v", err)
					return
				}
				switch status {
				case http.StatusOK:
					if err := checkDelivery(p, rr.Sources); err != nil {
						t.Errorf("http misdelivery: %v", err)
						return
					}
					routed.Add(1)
				case http.StatusConflict:
					conflicts.Add(1)
				default:
					t.Errorf("http route: unexpected status %d", status)
					return
				}
			}
		}(int64(g))
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := net.Dial("tcp", s.TCPAddr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			cl := &tcpClient{conn: c}
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				inputs, _, err := cl.info()
				if err != nil {
					t.Errorf("tcp info: %v", err)
					return
				}
				p := bnbnet.RandomPerm(inputs, rng)
				status, sources, err := cl.route(p)
				if err != nil {
					t.Errorf("tcp route: %v", err)
					return
				}
				switch status {
				case tcpOK:
					if err := checkDelivery(p, sources); err != nil {
						t.Errorf("tcp misdelivery: %v", err)
						return
					}
					routed.Add(1)
				case tcpBadSize:
					conflicts.Add(1)
				default:
					t.Errorf("tcp route: unexpected status %d", status)
					return
				}
			}
		}(100 + int64(g))
	}

	admin := func(path string, wantShards int) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, body)
		}
		var out struct {
			Shards int `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		if out.Shards != wantShards {
			t.Fatalf("POST %s: %d shards, want %d", path, out.Shards, wantShards)
		}
	}

	for cycle := 0; cycle < 3; cycle++ {
		time.Sleep(30 * time.Millisecond)
		admin("/admin/shards/add", 3)
		time.Sleep(30 * time.Millisecond)
		admin("/admin/shards/remove", 2)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	if routed.Load() == 0 {
		t.Fatal("no request routed during the membership churn")
	}
	t.Logf("live membership: %d routed, %d stale-size conflicts, 0 lost, 0 misrouted",
		routed.Load(), conflicts.Load())
}

func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := newServer(config{family: "nope", m: 3, shards: 2, httpAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("newServer accepted an unknown family")
	}
	if _, err := newServer(config{family: "bnb", m: 3, shards: 0, httpAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("newServer accepted zero shards")
	}
}
