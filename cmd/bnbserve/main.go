// Command bnbserve fronts a multi-shard cluster fabric with network
// protocols: an HTTP JSON API for routing, introspection and live shard
// membership, and an optional length-prefixed binary TCP protocol for
// high-rate clients. The fabric is a bnbnet.Cluster — independent
// supervised BNB shards joined by edge-colored inter-shard exchange
// stages — so shards can be added and drained while requests are in
// flight, with zero loss and zero misrouting.
//
// Usage:
//
//	bnbserve [-family bnb] [-m 5] [-shards 4] [-planes 2]
//	         [-http :8080] [-tcp :9090] [-debug]
//
// HTTP API:
//
//	GET  /v1/info            {"family","shard_order","shards","inputs"}
//	POST /v1/route           {"perm":[d0,d1,...]} -> {"inputs","sources"}
//	                         sources[j] = the input whose word output j
//	                         received; 409 when the perm length no longer
//	                         matches the fabric (refetch /v1/info), 422
//	                         when it is not a permutation
//	GET  /v1/stats           the cluster's unified Stats() as JSON
//	POST /admin/shards/add   grow the fabric by one shard -> {"shards"}
//	POST /admin/shards/remove drain and retire one shard  -> {"shards"}
//	/debug/...               metrics exposition, trace dump, expvar and
//	                         pprof (with -debug)
//
// TCP protocol (big-endian): request = opcode byte, where opcode 1 (info)
// has no payload and opcode 2 (route) is followed by uint32 n and n
// uint32 destinations. Response = status byte (0 ok, 1 size mismatch,
// 2 not a permutation, 3 unavailable, 4 bad request, 5 internal), then
// for ok info uint32 inputs + uint32 shards, for ok route n uint32
// sources. On a size-mismatch status the client refetches info and
// retries; connections carry any number of requests.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	bnbnet "repro"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.family, "family", "bnb", "network family of every shard")
	flag.IntVar(&cfg.m, "m", 5, "shard order (each shard has 2^m ports)")
	flag.IntVar(&cfg.shards, "shards", 4, "initial shard count")
	flag.IntVar(&cfg.planes, "planes", 0, "redundant planes per shard (0 = engine default)")
	flag.StringVar(&cfg.httpAddr, "http", ":8080", "HTTP listen address")
	flag.StringVar(&cfg.tcpAddr, "tcp", "", `binary TCP listen address, e.g. ":9090" ("" disables)`)
	flag.BoolVar(&cfg.debug, "debug", false, "mount the debug bundle (metrics, traces, expvar, pprof) under /debug/")
	flag.Parse()

	srv, err := newServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bnbserve:", err)
		os.Exit(1)
	}
	srv.start()
	fmt.Printf("bnbserve: %s fabric, %d shards x %d ports = %d aggregate ports\n",
		cfg.family, srv.cluster.Shards(), 1<<uint(cfg.m), srv.cluster.Inputs())
	fmt.Printf("bnbserve: http on %s\n", srv.HTTPAddr())
	if a := srv.TCPAddr(); a != "" {
		fmt.Printf("bnbserve: tcp on %s\n", a)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("bnbserve: draining")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "bnbserve: shutdown:", err)
		os.Exit(1)
	}
}

type config struct {
	family            string
	m, shards, planes int
	httpAddr, tcpAddr string
	debug             bool
}

// server owns the cluster and both protocol fronts. The HTTP and TCP
// handlers share the cluster's own admission control: every route lands on
// whatever shard membership is live when it arrives, and membership
// changes surface to stale clients as clean size-mismatch rejections,
// never as lost or misrouted words.
type server struct {
	cluster *bnbnet.Cluster
	sink    *bnbnet.Metrics
	tracer  *bnbnet.Tracer

	httpLn  net.Listener
	httpSrv *http.Server
	tcpLn   net.Listener // nil when the TCP front is disabled

	wg       sync.WaitGroup
	shutdown chan struct{}
}

func newServer(cfg config) (*server, error) {
	s := &server{sink: bnbnet.NewMetrics(), shutdown: make(chan struct{})}
	opts := []bnbnet.Option{bnbnet.WithShards(cfg.shards), bnbnet.WithMetrics(s.sink)}
	if cfg.planes > 0 {
		opts = append(opts, bnbnet.WithPlanes(cfg.planes))
	}
	if cfg.debug {
		s.tracer = bnbnet.NewTracer(4096)
		opts = append(opts, bnbnet.WithTracer(s.tracer))
	}
	c, err := bnbnet.NewCluster(cfg.family, cfg.m, opts...)
	if err != nil {
		return nil, err
	}
	s.cluster = c

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/info", s.handleInfo)
	mux.HandleFunc("/v1/route", s.handleRoute)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/admin/shards/add", s.handleShardAdd)
	mux.HandleFunc("/admin/shards/remove", s.handleShardRemove)
	if cfg.debug {
		mux.Handle("/debug/", bnbnet.DebugHandler(s.sink, s.tracer))
	}
	s.httpSrv = &http.Server{Handler: mux}

	if s.httpLn, err = net.Listen("tcp", cfg.httpAddr); err != nil {
		c.Close()
		return nil, fmt.Errorf("http listen on %q: %w", cfg.httpAddr, err)
	}
	if cfg.tcpAddr != "" {
		if s.tcpLn, err = net.Listen("tcp", cfg.tcpAddr); err != nil {
			s.httpLn.Close()
			c.Close()
			return nil, fmt.Errorf("tcp listen on %q: %w", cfg.tcpAddr, err)
		}
	}
	return s, nil
}

// start launches the protocol fronts; it returns immediately.
func (s *server) start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.httpSrv.Serve(s.httpLn) // http.ErrServerClosed on shutdown
	}()
	if s.tcpLn != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.acceptTCP()
		}()
	}
}

// HTTPAddr returns the HTTP front's listen address (useful with ":0").
func (s *server) HTTPAddr() string { return s.httpLn.Addr().String() }

// TCPAddr returns the TCP front's listen address, or "" when disabled.
func (s *server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// Shutdown stops admission, drains every in-flight request and closes the
// fabric: listeners first (no new connections), then the cluster's own
// drain (every accepted request lands), then teardown.
func (s *server) Shutdown(ctx context.Context) error {
	close(s.shutdown)
	s.httpSrv.Close()
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	s.wg.Wait()
	if err := s.cluster.Drain(ctx); err != nil {
		s.cluster.Close()
		return err
	}
	return s.cluster.Close()
}

// ---------------------------------------------------------------------------
// HTTP front
// ---------------------------------------------------------------------------

type infoResponse struct {
	Family     string `json:"family"`
	ShardOrder int    `json:"shard_order"`
	Shards     int    `json:"shards"`
	Inputs     int    `json:"inputs"`
}

func (s *server) info() infoResponse {
	return infoResponse{
		Family:     s.cluster.ShardFamily(),
		ShardOrder: s.cluster.ShardOrder(),
		Shards:     s.cluster.Shards(),
		Inputs:     s.cluster.Inputs(),
	}
}

func (s *server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.info())
}

type routeRequest struct {
	Perm []int `json:"perm"`
}

type routeResponse struct {
	Inputs int `json:"inputs"`
	// Sources[j] is the input index whose word was delivered to output j.
	Sources []int `json:"sources"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req routeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	out, err := s.cluster.RoutePerm(req.Perm)
	if err != nil {
		http.Error(w, err.Error(), routeStatus(err))
		return
	}
	sources := make([]int, len(out))
	for j, word := range out {
		sources[j] = int(word.Data)
	}
	writeJSON(w, http.StatusOK, routeResponse{Inputs: len(out), Sources: sources})
}

// routeStatus maps routing errors onto HTTP statuses: a size mismatch is a
// stale-membership conflict the client resolves by refetching /v1/info, a
// non-permutation is semantically invalid, a draining or closed fabric is
// unavailable, everything else is internal.
func routeStatus(err error) int {
	switch {
	case errors.Is(err, bnbnet.ErrBadSize):
		return http.StatusConflict
	case errors.Is(err, bnbnet.ErrNotPermutation):
		return http.StatusUnprocessableEntity
	case errors.Is(err, bnbnet.ErrDraining), errors.Is(err, bnbnet.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.Stats())
}

func (s *server) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	s.handleMembership(w, r, s.cluster.AddShard)
}

func (s *server) handleShardRemove(w http.ResponseWriter, r *http.Request) {
	s.handleMembership(w, r, s.cluster.RemoveShard)
}

func (s *server) handleMembership(w http.ResponseWriter, r *http.Request, op func(context.Context) (int, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	shards, err := op(r.Context())
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, bnbnet.ErrDraining) || errors.Is(err, bnbnet.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Shards int `json:"shards"`
		Inputs int `json:"inputs"`
	}{shards, s.cluster.Inputs()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ---------------------------------------------------------------------------
// TCP front
// ---------------------------------------------------------------------------

const (
	opInfo  = 1
	opRoute = 2

	tcpOK         = 0
	tcpBadSize    = 1
	tcpNotPerm    = 2
	tcpUnavail    = 3
	tcpBadRequest = 4
	tcpInternal   = 5

	// maxTCPPerm bounds a single route frame; 2^20 ports is far beyond any
	// fabric this process can host and keeps a garbage length prefix from
	// forcing a giant allocation.
	maxTCPPerm = 1 << 20
)

func (s *server) acceptTCP() {
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveTCPConn(conn)
		}()
	}
}

func (s *server) serveTCPConn(conn net.Conn) {
	var opcode [1]byte
	var u32 [4]byte
	for {
		if _, err := io.ReadFull(conn, opcode[:]); err != nil {
			return // client hung up
		}
		switch opcode[0] {
		case opInfo:
			resp := make([]byte, 9)
			resp[0] = tcpOK
			binary.BigEndian.PutUint32(resp[1:5], uint32(s.cluster.Inputs()))
			binary.BigEndian.PutUint32(resp[5:9], uint32(s.cluster.Shards()))
			if _, err := conn.Write(resp); err != nil {
				return
			}
		case opRoute:
			if _, err := io.ReadFull(conn, u32[:]); err != nil {
				return
			}
			n := binary.BigEndian.Uint32(u32[:])
			if n == 0 || n > maxTCPPerm {
				conn.Write([]byte{tcpBadRequest})
				return
			}
			raw := make([]byte, 4*n)
			if _, err := io.ReadFull(conn, raw); err != nil {
				return
			}
			p := make([]int, n)
			for i := range p {
				p[i] = int(binary.BigEndian.Uint32(raw[4*i:]))
			}
			out, err := s.cluster.RoutePerm(p)
			if err != nil {
				if _, werr := conn.Write([]byte{tcpErrStatus(err)}); werr != nil {
					return
				}
				continue
			}
			resp := make([]byte, 1+4*len(out))
			resp[0] = tcpOK
			for j, word := range out {
				binary.BigEndian.PutUint32(resp[1+4*j:], uint32(word.Data))
			}
			if _, err := conn.Write(resp); err != nil {
				return
			}
		default:
			conn.Write([]byte{tcpBadRequest})
			return
		}
	}
}

func tcpErrStatus(err error) byte {
	switch {
	case errors.Is(err, bnbnet.ErrBadSize):
		return tcpBadSize
	case errors.Is(err, bnbnet.ErrNotPermutation):
		return tcpNotPerm
	case errors.Is(err, bnbnet.ErrDraining), errors.Is(err, bnbnet.ErrClosed):
		return tcpUnavail
	default:
		return tcpInternal
	}
}
