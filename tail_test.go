package bnbnet

import (
	"math/rand"
	"testing"
	"time"
)

// TestTailToleranceSoak is the acceptance soak for the tail-tolerance stack:
// 10k requests against a 3-plane supervised fabric with one plane under
// latency chaos — a hard 20ms stall window plus background slow chaos. It
// holds the whole contract at once:
//
//   - zero lost, misrouted, or duplicated deliveries, checked word by word;
//   - the hedged p99 stays within 3x the healthy-fleet p99 measured by an
//     identical fault-free run, because hedges cut the stalls out of the tail;
//   - the stalling plane cycles suspect -> quarantined -> readmitted, and the
//     fleet ends the soak fully healthy.
//
// The 20ms stall is deliberate: container timers tick at ~1ms granularity,
// so a sub-tick stall would be indistinguishable from hedge-timer overshoot.
func TestTailToleranceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance soak; skipped in -short")
	}
	const (
		m        = 4
		planes   = 3
		requests = 10000
		seed     = 20260808
		stall    = 20 * time.Millisecond
	)

	// run drives the soak closed-loop — one request in flight, so the sink's
	// submit-to-completion latency is pure service time — verifying every
	// delivery word by word.
	run := func(s *Supervised) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		n := s.Inputs()
		for i := 0; i < requests; i++ {
			p := RandomPerm(n, rng)
			outs, errs := s.RoutePermBatch([]Perm{p})
			if errs[0] != nil {
				t.Fatalf("request %d: %v", i, errs[0])
			}
			out := outs[0]
			if len(out) != n {
				t.Fatalf("request %d: %d outputs, want %d", i, len(out), n)
			}
			// RoutePermBatch carries each source index as its payload: output
			// j must hold address j and the source index that targeted j.
			// Addr pins no-misroute, Data pins no-loss/no-duplicate.
			for j, w := range out {
				if w.Addr != j {
					t.Fatalf("request %d: output %d misrouted: carries address %d", i, j, w.Addr)
				}
				if p[int(w.Data)] != j {
					t.Fatalf("request %d: output %d carries source %d, but perm sends %d to %d",
						i, j, w.Data, w.Data, p[int(w.Data)])
				}
			}
		}
	}

	build := func(faulty bool) (*Supervised, *Metrics) {
		t.Helper()
		sink := NewMetrics()
		opts := []Option{WithPlanes(planes), WithWorkers(4), WithMetrics(sink), WithHedgeAuto()}
		if faulty {
			opts = append(opts, WithPlaneFaults(0, &FaultPlan{
				// A hard stall window long enough to out-strike the detector's
				// hysteresis: strikes require consecutive slow completions, and
				// under hedging a stalled pass completes ~20ms after the request
				// it belonged to, so a short window ends before its own
				// completions land and post-window fast passes reset the count.
				// Sparse background slow chaos (~0.4% of passes) seasons the
				// tail without moving the p99 itself.
				Faults:    []Fault{{Kind: FaultSlow, Delay: stall, From: 200, Until: 300}},
				SlowRate:  0.004,
				SlowDelay: stall,
				SlowHeal:  1,
				Seed:      seed,
			}))
		}
		s, err := NewSupervised("bnb", m, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s, sink
	}

	healthy, healthySink := build(false)
	run(healthy)
	if err := healthy.Close(); err != nil {
		t.Fatal(err)
	}
	healthyP99 := healthySink.Snapshot().P99

	faulty, faultySink := build(true)
	defer faulty.Close()
	run(faulty)
	hedgedP99 := faultySink.Snapshot().P99

	if healthyP99 <= 0 || hedgedP99 <= 0 {
		t.Fatalf("degenerate p99s: healthy %v, hedged %v", healthyP99, hedgedP99)
	}
	if hedgedP99 > 3*healthyP99 {
		t.Errorf("hedged p99 %v above 3x the healthy fleet's %v — hedging failed to cut the stalls out of the tail",
			hedgedP99, healthyP99)
	}
	if faulty.Hedges() == 0 {
		t.Error("the hedge timer never fired across a 10k-request soak with 20ms stalls")
	}
	if faulty.HedgeWins() == 0 {
		t.Error("no hedge ever beat a stalled primary")
	}
	if wins := faulty.HedgeWins(); wins > faulty.Hedges() {
		t.Errorf("hedge wins %d exceed hedges %d", wins, faulty.Hedges())
	}

	// The stalling plane must have been drained for slowness and readmitted
	// once its window healed; give the health checker a bounded window to
	// finish the cycle, then require a fully healthy fleet.
	if faulty.SlowQuarantines() == 0 {
		t.Error("the stalling plane was never quarantined for slowness")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		allHealthy := true
		for _, st := range faulty.PlaneStats() {
			if st.State != PlaneHealthy {
				allHealthy = false
			}
		}
		if allHealthy && faulty.Readmits() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never returned to full health: readmits %d, stats %+v",
				faulty.Readmits(), faulty.PlaneStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
