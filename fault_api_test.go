package bnbnet

// Tests for the fault-injection public surface and the registry's option
// validation: WithFaults/WithRetry/WithBreaker/WithFallback wiring,
// rejection of invalid and conflicting options, fault-aware engines
// recovering via retry and fallback, the degraded fabric path, and the
// probe-based diagnoser localizing planted faults.

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		err  func() error
	}{
		{"negative workers (New)", func() error { _, err := New("bnb", 3, WithWorkers(-1)); return err }},
		{"negative workers (NewEngine)", func() error {
			n, _ := New("bnb", 3)
			_, err := NewEngine(n, WithWorkers(-2))
			return err
		}},
		{"negative queue", func() error {
			n, _ := New("bnb", 3)
			_, err := NewEngine(n, WithQueue(-1))
			return err
		}},
		{"queue on New", func() error { _, err := New("bnb", 3, WithQueue(8)); return err }},
		{"timeout on New", func() error { _, err := New("bnb", 3, WithTimeout(time.Second)); return err }},
		{"retry on New", func() error { _, err := New("bnb", 3, WithRetry(3, 0)); return err }},
		{"negative timeout", func() error {
			n, _ := New("bnb", 3)
			_, err := NewEngine(n, WithTimeout(-time.Second))
			return err
		}},
		{"zero retry attempts", func() error {
			n, _ := New("bnb", 3)
			_, err := NewEngine(n, WithRetry(0, 0))
			return err
		}},
		{"negative retry backoff", func() error {
			n, _ := New("bnb", 3)
			_, err := NewEngine(n, WithRetry(3, -time.Millisecond))
			return err
		}},
		{"zero breaker threshold", func() error {
			n, _ := New("bnb", 3)
			_, err := NewEngine(n, WithBreaker(0))
			return err
		}},
		{"nil fallback", func() error {
			n, _ := New("bnb", 3)
			_, err := NewEngine(n, WithBreaker(2), WithFallback(nil))
			return err
		}},
		{"fallback without breaker", func() error {
			n, _ := New("bnb", 3)
			fb, _ := New("bnb", 3)
			_, err := NewEngine(n, WithFallback(fb))
			return err
		}},
		{"fallback port mismatch", func() error {
			n, _ := New("bnb", 3)
			fb, _ := New("bnb", 4)
			_, err := NewEngine(n, WithBreaker(2), WithFallback(fb))
			return err
		}},
		{"nil fault plan", func() error { _, err := New("bnb", 3, WithFaults(nil)); return err }},
		{"faults on NewEngine", func() error {
			n, _ := New("bnb", 3)
			_, err := NewEngine(n, WithFaults(&FaultPlan{ChaosRate: 0.1}))
			return err
		}},
		{"faults with trace", func() error {
			_, err := New("bnb", 3, WithFaults(&FaultPlan{ChaosRate: 0.1}), WithTrace(func(int, []Word) {}))
			return err
		}},
		{"faults with workers", func() error {
			_, err := New("bnb", 3, WithFaults(&FaultPlan{ChaosRate: 0.1}), WithWorkers(2))
			return err
		}},
		{"stuck-at on non-bnb family", func() error {
			_, err := New("benes", 3, WithFaults(StuckAt(FaultElement{}, true)))
			return err
		}},
		{"invalid plan", func() error {
			_, err := New("bnb", 3, WithFaults(&FaultPlan{ChaosRate: 2}))
			return err
		}},
	}
	for _, tc := range bad {
		if err := tc.err(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFaultyNetworkChaosRecovery(t *testing.T) {
	var m Metrics
	n, err := New("bnb", 4, WithFaults(&FaultPlan{ChaosRate: 0.2, ChaosHeal: 1, Seed: 11}), WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := n.(*FaultyNetwork)
	if !ok {
		t.Fatalf("WithFaults returned %T, want *FaultyNetwork", n)
	}
	if fn.Unwrap().Name() != "bnb" {
		t.Errorf("Unwrap().Name() = %q", fn.Unwrap().Name())
	}
	e, err := NewEngine(n, WithWorkers(2), WithRetry(20, 0), WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		p := RandomPerm(n.Inputs(), rng)
		tk, err := e.Submit(nil, permWordsAPI(p))
		if err != nil {
			t.Fatal(err)
		}
		out, err := tk.Wait()
		if err != nil {
			t.Fatalf("trial %d not delivered despite retries: %v", trial, err)
		}
		for j, wd := range out {
			if wd.Addr != j {
				t.Fatalf("trial %d: output %d holds address %d", trial, j, wd.Addr)
			}
		}
	}
	if fn.InjectedPasses() == 0 {
		t.Fatal("chaos at rate 0.2 perturbed nothing; the test proves nothing")
	}
	s := m.Snapshot()
	if s.Retries == 0 {
		t.Error("faults were injected but no retries counted")
	}
	if s.FaultsInjected == 0 {
		t.Error("no injected faults counted")
	}
}

func TestEngineFallbackServesThroughOutage(t *testing.T) {
	// A permanently dead output link on the primary trips the breaker; the
	// healthy standby keeps serving.
	n, err := New("bnb", 3, WithFaults(&FaultPlan{
		Faults: []Fault{{Kind: FaultDeadLink, Port: 3}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := New("bnb", 3)
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	e, err := NewEngine(n, WithWorkers(1), WithBreaker(2), WithFallback(fb), WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(9))
	failures, served := 0, 0
	for trial := 0; trial < 10; trial++ {
		tk, err := e.Submit(nil, permWordsAPI(RandomPerm(n.Inputs(), rng)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			if !errors.Is(err, ErrMisrouted) {
				t.Fatalf("trial %d: %v, want ErrMisrouted from the dead link", trial, err)
			}
			failures++
			continue
		}
		served++
	}
	if failures != 2 {
		t.Errorf("%d failures before failover, want exactly the breaker threshold 2", failures)
	}
	if served != 8 {
		t.Errorf("%d requests served by the fallback, want 8", served)
	}
	if !e.BreakerOpen() {
		t.Error("breaker closed despite a permanently dead primary")
	}
	s := m.Snapshot()
	if s.BreakerTrips != 1 || s.FallbackRoutes != 8 {
		t.Errorf("trips=%d fallbacks=%d, want 1 and 8", s.BreakerTrips, s.FallbackRoutes)
	}
}

func TestDegradedFabricWithFaultyNetwork(t *testing.T) {
	n, err := New("bnb", 4, WithFaults(&FaultPlan{ChaosRate: 0.01, ChaosHeal: 1, Seed: 2026}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFabric(n, WithDegraded())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	stats, err := s.Run(PermutationTraffic{Load: 0.5}, 1000, rng)
	if err != nil {
		t.Fatalf("degraded fabric aborted: %v", err)
	}
	drain, err := s.Run(PermutationTraffic{Load: 0}, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n.(*FaultyNetwork).InjectedPasses() == 0 {
		t.Fatal("chaos injected nothing")
	}
	if got := stats.Delivered + drain.Delivered; got != stats.Offered {
		t.Errorf("delivered %d of %d offered cells", got, stats.Offered)
	}
}

func TestDiagnoserLocalizesPlantedFault(t *testing.T) {
	const m = 4
	d, err := NewFaultDiagnoser(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != m || d.Probes() == 0 {
		t.Fatalf("diagnoser: M=%d probes=%d", d.M(), d.Probes())
	}
	if g := d.AmbiguousGroups(); g != 0 {
		t.Fatalf("%d ambiguous fault groups at m=%d, want 0", g, m)
	}

	healthy, err := New("bnb", m)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := d.Diagnose(healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Healthy {
		t.Fatalf("healthy network diagnosed as faulty: %+v", diag)
	}

	elems := FaultElements(m)
	want := elems[len(elems)/2]
	faulty, err := New("bnb", m, WithFaults(StuckAt(want, true)))
	if err != nil {
		t.Fatal(err)
	}
	diag, err = d.Diagnose(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Healthy || !diag.Found {
		t.Fatalf("planted fault not found: %+v", diag)
	}
	if diag.Fault.Elem != want || diag.Fault.Kind != FaultStuckCross {
		t.Errorf("diagnosed %v at %v, want stuck-cross at %v", diag.Fault.Kind, diag.Fault.Elem, want)
	}
}

func permWordsAPI(p Perm) []Word {
	words := make([]Word, len(p))
	for i, d := range p {
		words[i] = Word{Addr: d, Data: uint64(i)}
	}
	return words
}
