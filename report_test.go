package bnbnet

import (
	"encoding/json"
	"testing"
)

func TestFullReportValidation(t *testing.T) {
	if _, err := FullReport(0, 3, 0, 10, 1); err == nil {
		t.Error("minM=0 accepted")
	}
	if _, err := FullReport(4, 3, 0, 10, 1); err == nil {
		t.Error("maxM < minM accepted")
	}
	if _, err := FullReport(3, 15, 0, 10, 1); err == nil {
		t.Error("maxM=15 accepted")
	}
}

func TestFullReportContents(t *testing.T) {
	r, err := FullReport(3, 5, 8, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Orders) != 3 {
		t.Fatalf("orders = %v", r.Orders)
	}
	if len(r.Table1) != 3 || len(r.Table2) != 3 {
		t.Errorf("table sweeps = %d/%d, want 3/3", len(r.Table1), len(r.Table2))
	}
	// Every equation reconciliation must be an exact match.
	if len(r.Equations) != 3*6 {
		t.Errorf("equation checks = %d, want 18", len(r.Equations))
	}
	for _, e := range r.Equations {
		if !e.Match || e.Counted != e.Formula {
			t.Errorf("equation %s at m=%d: counted %d vs formula %d", e.Equation, e.M, e.Counted, e.Formula)
		}
	}
	// Headline ratios decrease with m.
	for i := 1; i < len(r.Headline); i++ {
		if r.Headline[i].Hardware >= r.Headline[i-1].Hardware {
			t.Errorf("hardware ratio did not decrease at m=%d", r.Headline[i].M)
		}
	}
	// Beneš: shifts always route; random rate bounded.
	for _, b := range r.Benes {
		if !b.ShiftsOK {
			t.Errorf("m=%d: shifts failed", b.M)
		}
		if b.RandomRate < 0 || b.RandomRate > 0.5 {
			t.Errorf("m=%d: random rate %v out of band", b.M, b.RandomRate)
		}
	}
	// Banyan: routable counts are 2^{(N/2)m}.
	for _, b := range r.Banyan {
		want := 1.0
		for i := 0; i < (1<<uint(b.M))/2*b.M; i++ {
			want *= 2
		}
		if b.Routable != want {
			t.Errorf("m=%d: routable %v, want %v", b.M, b.Routable, want)
		}
	}
	// Gate reports match the closed-form depth.
	for _, g := range r.Gates {
		k := 0
		for n := g.Inputs; n > 1; n >>= 1 {
			k++
		}
		if g.CriticalPathGates != ExpectedBSNGateDepth(k) {
			t.Errorf("gate depth %d != closed form %d", g.CriticalPathGates, ExpectedBSNGateDepth(k))
		}
	}
	// All seven networks conform at m=3 with the exhaustive battery.
	if len(r.Conformance) != 7 {
		t.Fatalf("conformance entries = %d, want 7", len(r.Conformance))
	}
	for _, c := range r.Conformance {
		if !c.OK || c.Failures != 0 {
			t.Errorf("%s failed conformance", c.Network)
		}
		if !c.Exhaustive {
			t.Errorf("%s: exhaustive battery should run at N=8", c.Network)
		}
	}
	// Availability: the degraded fabric loses nothing at any swept rate.
	if len(r.Availability) != 3 {
		t.Fatalf("availability entries = %d, want 3", len(r.Availability))
	}
	for _, a := range r.Availability {
		if a.InjectedPasses == 0 {
			t.Errorf("rate %v: chaos injected nothing", a.ChaosRate)
		}
		if a.EventualDelivery != 1.0 {
			t.Errorf("rate %v: eventual delivery %v, want 1.0 (delivered %d of %d)",
				a.ChaosRate, a.EventualDelivery, a.Delivered, a.Offered)
		}
	}
	// Diagnosis: the probe set separates the whole fault universe.
	if len(r.Diagnosis) != 1 {
		t.Fatalf("diagnosis entries = %d, want 1", len(r.Diagnosis))
	}
	for _, d := range r.Diagnosis {
		if d.AmbiguousGroups != 0 {
			t.Errorf("m=%d: %d ambiguous fault groups", d.M, d.AmbiguousGroups)
		}
		if d.ExhaustiveRun && !d.ExhaustiveOK {
			t.Errorf("m=%d: exhaustive diagnosis failed", d.M)
		}
	}
}

func TestFullReportJSONRoundTrip(t *testing.T) {
	r, err := FullReport(3, 4, 0, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Paper != r.Paper || len(back.Equations) != len(r.Equations) {
		t.Error("round trip lost content")
	}
	if len(data) < 1000 {
		t.Errorf("report suspiciously small: %d bytes", len(data))
	}
}

func TestFullReportDeterministic(t *testing.T) {
	a, err := FullReport(3, 4, 0, 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FullReport(3, 4, 0, 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("same seed produced different reports")
	}
}
